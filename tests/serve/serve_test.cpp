// GemmServer contract: degradation ladder, typed errors, deterministic
// deadlines, transient-fault retry, and the per-rung circuit breaker.
#include <gtest/gtest.h>

#include <string>

#include "baselines/reference.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "sim/deadline.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace kami {
namespace {

using serve::ErrorCode;
using serve::GemmServer;
using serve::ServeConfig;

double counter(const char* name) {
  return obs::MetricRegistry::global().counter(name).value();
}

template <Scalar T>
std::pair<Matrix<T>, Matrix<T>> operands(std::size_t m, std::size_t n, std::size_t k,
                                         std::uint64_t seed = 1) {
  Rng rng(seed);
  Matrix<T> A = random_matrix<T>(m, k, rng);
  Matrix<T> B = random_matrix<T>(k, n, rng);
  return {std::move(A), std::move(B)};
}

template <Scalar T>
bool bits_equal(const Matrix<T>& a, const Matrix<T>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (static_cast<double>(num_traits<T>::to_acc(a.data()[i])) !=
        static_cast<double>(num_traits<T>::to_acc(b.data()[i])))
      return false;
  return true;
}

TEST(ServeLadder, ServesRequestedRungWhenFeasible) {
  obs::ScopedMetricsReset reset;
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_FALSE(r.degraded);
  EXPECT_FALSE(r.from_reference);
  EXPECT_EQ(r.rung, 0);
  EXPECT_EQ(r.rung_label, "kami_1d");
  EXPECT_EQ(r.attempts, 1);
  EXPECT_GT(r.profile.latency, 0.0);
  EXPECT_TRUE(bits_equal(r.C, baselines::reference_gemm(A, B)));
  EXPECT_EQ(counter("serve.ok"), 1.0);
  EXPECT_EQ(counter("serve.served.kami_1d"), 1.0);
  EXPECT_EQ(counter("serve.degraded"), 0.0);
}

// The ISSUE's pinned ladder shape: 3D FP64 at order 128 exceeds GH200's
// register file at every spill ratio, 2D fits — the request must degrade one
// rung and report it through the result and the obs counters.
TEST(ServeLadder, DegradesInfeasibleThreeDToTwoD) {
  obs::ScopedMetricsReset reset;
  GemmServer server;
  const auto [A, B] = operands<double>(128, 128, 128);
  const auto r = server.serve<double>(Algo::ThreeD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_TRUE(r.degraded);
  EXPECT_FALSE(r.from_reference);
  EXPECT_EQ(r.requested, Algo::ThreeD);
  EXPECT_EQ(r.served, Algo::TwoD);
  EXPECT_EQ(r.rung, 1);
  EXPECT_EQ(r.rung_label, "kami_2d");
  EXPECT_TRUE(bits_equal(r.C, baselines::reference_gemm(A, B)));
  EXPECT_EQ(counter("serve.served.kami_2d"), 1.0);
  EXPECT_EQ(counter("serve.degraded"), 1.0);
  EXPECT_EQ(counter("serve.served.kami_3d"), 0.0);
}

// 17^3 fp16 has no legal launch plan on any KAMI rung (17 is indivisible by
// every warp grid); the host reference must serve it bit-correctly.
TEST(ServeLadder, FallsBackToReferenceWhenEveryKamiRungIsInfeasible) {
  obs::ScopedMetricsReset reset;
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(17, 17, 17);
  const auto r = server.serve<fp16_t>(Algo::ThreeD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_TRUE(r.from_reference);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.rung_label, "reference");
  EXPECT_TRUE(bits_equal(r.C, baselines::reference_gemm(A, B)));
  EXPECT_EQ(counter("serve.served.reference"), 1.0);
}

TEST(ServeLadder, DegradationCanBeDisabled) {
  ServeConfig cfg;
  cfg.allow_degradation = false;
  GemmServer server(cfg);
  const auto [A, B] = operands<double>(128, 128, 128);
  const auto r = server.serve<double>(Algo::ThreeD, sim::gh200(), A, B);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code, ErrorCode::ResourceExhausted);
  // Satellite: planner errors must name the shape and the failed constraint.
  EXPECT_NE(r.message.find("m=128"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("3d"), std::string::npos) << r.message;
}

TEST(ServeDeadline, TypedTerminalAndDeterministic) {
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  GemmOptions opt;
  opt.deadline_cycles = 50.0;  // far below any 64^3 kernel latency

  GemmServer first;
  const auto a = first.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B, opt);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.code, ErrorCode::DeadlineExceeded);
  EXPECT_NE(a.message.find("deadline"), std::string::npos) << a.message;
  // Terminal: no degradation attempts after the budget is blown.
  EXPECT_EQ(a.attempts, 1);

  // Same request, fresh server: byte-identical abort.
  GemmServer second;
  const auto b = second.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B, opt);
  EXPECT_EQ(b.code, ErrorCode::DeadlineExceeded);
  EXPECT_EQ(a.message, b.message);
}

TEST(ServeDeadline, GenerousBudgetDoesNotTrip) {
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  GemmOptions opt;
  opt.deadline_cycles = 1e9;
  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B, opt);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_LT(r.profile.latency, 1e9);
}

TEST(ServeDeadline, NumericsOnlyNeverTrips) {
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  GemmOptions opt;
  opt.mode = sim::ExecMode::NumericsOnly;
  opt.deadline_cycles = 1.0;  // no clock ever advances in NumericsOnly
  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B, opt);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_TRUE(bits_equal(r.C, baselines::reference_gemm(A, B)));
}

TEST(ServeRetry, TransientFaultRecoversOnSameRung) {
  obs::ScopedMetricsReset reset;
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(64, 64, 64);

  verify::FaultHooks fault;
  fault.warp_advance_skew = -1e9;  // rewinds warp clocks: InvariantViolation
  fault.armed_runs = 1;            // clears after one failing run
  const verify::ScopedFault guard(fault);

  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.rung_label, "kami_1d");
  EXPECT_EQ(r.attempts, 2);  // one faulted attempt + one clean retry
  EXPECT_EQ(counter("serve.retries"), 1.0);
  EXPECT_TRUE(bits_equal(r.C, baselines::reference_gemm(A, B)));
}

TEST(ServeRetry, PermanentFaultExhaustsRetriesAndServesFromReference) {
  obs::ScopedMetricsReset reset;
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(64, 64, 64);

  verify::FaultHooks fault;
  fault.warp_advance_skew = -1e9;
  fault.armed_runs = -1;  // never clears; only the host reference is immune
  const verify::ScopedFault guard(fault);

  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_TRUE(r.from_reference);
  EXPECT_EQ(r.rung_label, "reference");
  EXPECT_EQ(r.attempts, server.config().max_attempts_per_rung + 1);
  EXPECT_TRUE(bits_equal(r.C, baselines::reference_gemm(A, B)));
}

TEST(ServeRetry, BackoffScheduleIsBoundedAndPublished) {
  obs::ScopedMetricsReset reset;
  ServeConfig cfg;
  cfg.backoff_base_ms = 0.25;
  cfg.backoff_max_ms = 0.4;  // cap below base*2 so the bound is observable
  GemmServer server(cfg);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);

  verify::FaultHooks fault;
  fault.warp_advance_skew = -1e9;
  fault.armed_runs = 2;  // two failing runs: retries back off 0.25 then 0.4
  const verify::ScopedFault guard(fault);

  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.attempts, 3);
  EXPECT_DOUBLE_EQ(counter("serve.backoff_ms"), 0.25 + 0.4);
}

TEST(ServeRetry, InjectedAllocationFailureDegradesOneRung) {
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(64, 64, 64);

  verify::FaultHooks fault;
  fault.alloc_fail_countdown = 0;  // the very next register allocation fails
  const verify::ScopedFault guard(fault);

  const auto r = server.serve<fp16_t>(Algo::ThreeD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.served, Algo::TwoD);  // hook is one-shot: the next rung is clean
  EXPECT_TRUE(bits_equal(r.C, baselines::reference_gemm(A, B)));
}

TEST(ServeBreaker, TripsShortCircuitsAndRecoversThroughHalfOpen) {
  obs::ScopedMetricsReset reset;
  ServeConfig cfg;
  cfg.breaker_failure_threshold = 1;
  cfg.breaker_cooldown_requests = 1;
  GemmServer server(cfg);
  const auto& dev = sim::gh200();
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto rung_state = [&] {
    return server.breaker_state(dev.name, Algo::OneD, Precision::FP16, 64, 64, 64);
  };
  ASSERT_EQ(rung_state(), serve::BreakerState::Closed);

  {
    verify::FaultHooks fault;
    fault.warp_advance_skew = -1e9;
    fault.armed_runs = -1;
    const verify::ScopedFault guard(fault);
    const auto r = server.serve<fp16_t>(Algo::OneD, dev, A, B);
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_TRUE(r.from_reference);  // rung failed permanently this request
  }
  EXPECT_EQ(rung_state(), serve::BreakerState::Open);
  EXPECT_EQ(counter("serve.breaker.trips"), 1.0);

  // Fault cleared, but the open breaker short-circuits the rung for one
  // cooldown request — served by reference without touching the simulator.
  const auto blocked = server.serve<fp16_t>(Algo::OneD, dev, A, B);
  ASSERT_TRUE(blocked.ok()) << blocked.message;
  EXPECT_TRUE(blocked.from_reference);
  EXPECT_EQ(counter("serve.breaker.short_circuits"), 1.0);

  // Cooldown expired: the next request is the half-open probe, it succeeds,
  // and the breaker closes again.
  const auto probe = server.serve<fp16_t>(Algo::OneD, dev, A, B);
  ASSERT_TRUE(probe.ok()) << probe.message;
  EXPECT_FALSE(probe.degraded);
  EXPECT_EQ(probe.rung_label, "kami_1d");
  EXPECT_EQ(rung_state(), serve::BreakerState::Closed);
  EXPECT_EQ(counter("serve.breaker.half_open_probes"), 1.0);
  EXPECT_EQ(counter("serve.breaker.closes"), 1.0);

  server.reset_breakers();
  EXPECT_EQ(rung_state(), serve::BreakerState::Closed);
}

TEST(ServeBreaker, FailedProbeReopens) {
  ServeConfig cfg;
  cfg.breaker_failure_threshold = 1;
  cfg.breaker_cooldown_requests = 1;
  GemmServer server(cfg);
  const auto& dev = sim::gh200();
  const auto [A, B] = operands<fp16_t>(64, 64, 64);

  verify::FaultHooks fault;
  fault.warp_advance_skew = -1e9;
  fault.armed_runs = -1;
  const verify::ScopedFault guard(fault);

  (void)server.serve<fp16_t>(Algo::OneD, dev, A, B);  // trips the breaker
  (void)server.serve<fp16_t>(Algo::OneD, dev, A, B);  // cooldown short-circuit
  (void)server.serve<fp16_t>(Algo::OneD, dev, A, B);  // probe runs, fails
  EXPECT_EQ(server.breaker_state(dev.name, Algo::OneD, Precision::FP16, 64, 64, 64),
            serve::BreakerState::Open);
}

TEST(ServeValidation, DegenerateShapesAreWellDefinedEmptyResults) {
  obs::ScopedMetricsReset reset;
  GemmServer server;
  const auto& dev = sim::gh200();
  const struct { std::size_t m, n, k; } shapes[] = {{0, 16, 16}, {16, 0, 16}, {16, 16, 0}};
  for (const auto& s : shapes) {
    const auto [A, B] = operands<fp16_t>(s.m, s.n, s.k);
    const auto r = server.serve<fp16_t>(Algo::OneD, dev, A, B);
    ASSERT_TRUE(r.ok()) << r.message;
    EXPECT_TRUE(r.degenerate);
    EXPECT_EQ(r.C.rows(), s.m);
    EXPECT_EQ(r.C.cols(), s.n);
    for (std::size_t i = 0; i < r.C.size(); ++i)
      EXPECT_EQ(static_cast<double>(num_traits<fp16_t>::to_acc(r.C.data()[i])), 0.0);
  }
  EXPECT_EQ(counter("serve.served.degenerate"), 3.0);
}

TEST(ServeValidation, MismatchedInnerDimensionsAreTyped) {
  GemmServer server;
  const Matrix<fp16_t> A(16, 8), B(16, 16);
  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  EXPECT_EQ(r.code, ErrorCode::InvalidRequest);
  EXPECT_NE(r.message.find("16x8"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("16x16"), std::string::npos) << r.message;
}

TEST(ServeValidation, UnknownAlgorithmIsTypedAndNamesTheValue) {
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(16, 16, 16);
  const auto r =
      server.serve<fp16_t>(static_cast<Algo>(42), sim::gh200(), A, B);
  EXPECT_EQ(r.code, ErrorCode::InvalidRequest);
  EXPECT_NE(r.message.find("42"), std::string::npos) << r.message;

  // Satellite: the raw API's rejection must name the value too.
  try {
    (void)gemm(static_cast<Algo>(42), sim::gh200(), A, B);
    FAIL() << "unknown algorithm must throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("42"), std::string::npos) << e.what();
  }
}

TEST(ServeErrors, ClassifyExceptionCoversTheTaxonomy) {
  using serve::classify_exception;
  EXPECT_EQ(classify_exception(nullptr), ErrorCode::Ok);
  EXPECT_EQ(classify_exception(
                std::make_exception_ptr(PreconditionError("bad config"))),
            ErrorCode::InfeasiblePlan);
  EXPECT_EQ(classify_exception(
                std::make_exception_ptr(sim::RegisterOverflow("regs"))),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(classify_exception(
                std::make_exception_ptr(sim::DeadlineExceeded("late"))),
            ErrorCode::DeadlineExceeded);
  EXPECT_EQ(classify_exception(std::make_exception_ptr(std::bad_alloc{})),
            ErrorCode::ResourceExhausted);
  EXPECT_EQ(classify_exception(std::make_exception_ptr(std::runtime_error("?"))),
            ErrorCode::InternalInvariant);

  // An InvariantViolation is transient only while a fault source is armed.
  EXPECT_EQ(classify_exception(
                std::make_exception_ptr(verify::InvariantViolation("trip"))),
            ErrorCode::InternalInvariant);
  verify::FaultHooks fault;
  fault.warp_advance_skew = -1.0;
  fault.armed_runs = 1;
  const verify::ScopedFault guard(fault);
  EXPECT_EQ(classify_exception(
                std::make_exception_ptr(verify::InvariantViolation("trip"))),
            ErrorCode::TransientFault);
}

TEST(ServeErrors, CodeAndBreakerNamesAreStable) {
  EXPECT_STREQ(serve::error_code_name(ErrorCode::Ok), "ok");
  EXPECT_STREQ(serve::error_code_name(ErrorCode::InvalidRequest), "invalid_request");
  EXPECT_STREQ(serve::error_code_name(ErrorCode::InfeasiblePlan), "infeasible_plan");
  EXPECT_STREQ(serve::error_code_name(ErrorCode::ResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(serve::error_code_name(ErrorCode::DeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(serve::error_code_name(ErrorCode::TransientFault), "transient_fault");
  EXPECT_STREQ(serve::error_code_name(ErrorCode::InternalInvariant),
               "internal_invariant");
  EXPECT_STREQ(serve::breaker_state_name(serve::BreakerState::Closed), "closed");
  EXPECT_STREQ(serve::breaker_state_name(serve::BreakerState::Open), "open");
  EXPECT_STREQ(serve::breaker_state_name(serve::BreakerState::HalfOpen), "half_open");
}

}  // namespace
}  // namespace kami
