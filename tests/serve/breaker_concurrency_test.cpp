// Circuit breaker state transitions under concurrent submit_async: a burst
// of failing requests trips a rung exactly once, the half-open window admits
// concurrent probes without losing the recovery, and a failed probe reopens.
// This suite runs under ThreadSanitizer in CI — the assertions below are
// deliberately restricted to invariants that hold for every interleaving of
// worker threads (breaker admission is mutex-serialized, so short-circuit
// and probe *counts* are deterministic even when completion order is not).
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace kami {
namespace {

using serve::BreakerState;
using serve::ErrorCode;
using serve::GemmServer;
using serve::ServeConfig;
using serve::ServeResult;

double counter(const char* name) {
  return obs::MetricRegistry::global().counter(name).value();
}

template <Scalar T>
std::pair<Matrix<T>, Matrix<T>> operands(std::size_t m, std::size_t n, std::size_t k,
                                         std::uint64_t seed = 1) {
  Rng rng(seed);
  Matrix<T> A = random_matrix<T>(m, k, rng);
  Matrix<T> B = random_matrix<T>(k, n, rng);
  return {std::move(A), std::move(B)};
}

/// Single-rung server: degradation and reference fallback off, so a rung
/// failure is a typed error instead of a lower rung masking the breaker.
ServeConfig bare_rung(int workers) {
  ServeConfig cfg;
  cfg.allow_degradation = false;
  cfg.allow_reference_fallback = false;
  cfg.async_workers = workers;
  return cfg;
}

verify::FaultHooks permanent_fault() {
  verify::FaultHooks hooks;
  hooks.warp_advance_skew = -1e9;
  hooks.armed_runs = -1;  // every attempt fails
  return hooks;
}

TEST(BreakerConcurrency, ConcurrentFailuresTripTheRungExactlyOnce) {
  obs::ScopedMetricsReset reset;
  ServeConfig cfg = bare_rung(/*workers=*/4);
  cfg.breaker_failure_threshold = 3;
  cfg.breaker_cooldown_requests = 1000;  // no probe during the burst
  constexpr std::size_t kBurst = 12;

  std::vector<std::future<ServeResult<fp16_t>>> futures;
  {
    GemmServer server(cfg);
    const auto [A, B] = operands<fp16_t>(32, 32, 32);
    {
      // Hooks snapshot at submission: every queued request carries the fault.
      const verify::ScopedFault guard(permanent_fault());
      for (std::size_t i = 0; i < kBurst; ++i)
        futures.push_back(server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));
    }
    for (auto& f : futures) {
      const ServeResult<fp16_t> r = f.get();
      // Every request fails typed — by running the rung or by short-circuit,
      // which reports the stored failure code, never a different one.
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.code, ErrorCode::TransientFault) << r.message;
      EXPECT_FALSE(r.message.empty());
    }
    EXPECT_EQ(server.breaker_state(sim::gh200().name, Algo::OneD, Precision::FP16,
                                   32, 32, 32),
              BreakerState::Open);
  }
  // However the 4 workers interleave, the Closed -> Open transition happens
  // exactly once: later failures land on an already-open breaker, and the
  // long cooldown means no probe could have closed and re-tripped it.
  EXPECT_EQ(counter("serve.breaker.trips"), 1.0);
  EXPECT_EQ(counter("serve.breaker.half_open_probes"), 0.0);
  // With 4 workers at most threshold + in-flight requests ever run the rung;
  // the rest of the burst must have been short-circuited.
  EXPECT_GE(counter("serve.breaker.short_circuits"), 1.0);
  EXPECT_EQ(counter("serve.errors"), static_cast<double>(kBurst));
}

TEST(BreakerConcurrency, HalfOpenWindowAdmitsConcurrentProbesAndClosesOnce) {
  obs::ScopedMetricsReset reset;
  ServeConfig cfg = bare_rung(/*workers=*/4);
  cfg.breaker_failure_threshold = 1;
  cfg.breaker_cooldown_requests = 4;
  constexpr std::size_t kBurst = 16;

  GemmServer server(cfg);
  const auto [A, B] = operands<fp16_t>(32, 32, 32);
  {
    const verify::ScopedFault guard(permanent_fault());
    const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
    ASSERT_EQ(r.code, ErrorCode::TransientFault) << r.message;
  }
  ASSERT_EQ(server.breaker_state(sim::gh200().name, Algo::OneD, Precision::FP16,
                                 32, 32, 32),
            BreakerState::Open);
  ASSERT_EQ(counter("serve.breaker.trips"), 1.0);

  // Fault cleared; a concurrent burst races the half-open transition. The
  // admission gate is mutex-serialized, so exactly `cooldown` requests
  // short-circuit, the next one flips the breaker half-open, and every
  // request admitted during the half-open window (the race this test pins)
  // serves — the first success closes the breaker, exactly once.
  std::vector<std::future<ServeResult<fp16_t>>> futures;
  for (std::size_t i = 0; i < kBurst; ++i)
    futures.push_back(server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));
  std::size_t ok = 0, short_circuited = 0;
  for (auto& f : futures) {
    const ServeResult<fp16_t> r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      ++short_circuited;
      EXPECT_EQ(r.code, ErrorCode::TransientFault) << r.message;  // stored code
      EXPECT_NE(r.message.find("short-circuited"), std::string::npos) << r.message;
    }
  }
  EXPECT_EQ(short_circuited, 4u);
  EXPECT_EQ(ok, kBurst - 4u);
  EXPECT_EQ(server.breaker_state(sim::gh200().name, Algo::OneD, Precision::FP16,
                                 32, 32, 32),
            BreakerState::Closed);
  EXPECT_EQ(counter("serve.breaker.short_circuits"), 4.0);
  EXPECT_EQ(counter("serve.breaker.half_open_probes"), 1.0);
  EXPECT_EQ(counter("serve.breaker.closes"), 1.0);
  EXPECT_EQ(counter("serve.breaker.trips"), 1.0);  // never re-tripped
}

TEST(BreakerConcurrency, FailedProbeReopensUnderConcurrentLoad) {
  obs::ScopedMetricsReset reset;
  ServeConfig cfg = bare_rung(/*workers=*/4);
  cfg.breaker_failure_threshold = 1;
  cfg.breaker_cooldown_requests = 2;
  constexpr std::size_t kBurst = 8;

  std::vector<std::future<ServeResult<fp16_t>>> futures;
  {
    GemmServer server(cfg);
    const auto [A, B] = operands<fp16_t>(32, 32, 32);
    const verify::ScopedFault guard(permanent_fault());
    const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
    ASSERT_EQ(r.code, ErrorCode::TransientFault) << r.message;

    // Fault still armed: every probe the concurrent burst earns fails and
    // reopens the breaker; nothing can close it.
    for (std::size_t i = 0; i < kBurst; ++i)
      futures.push_back(server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));
    for (auto& f : futures) {
      const ServeResult<fp16_t> r2 = f.get();
      EXPECT_FALSE(r2.ok());
      EXPECT_EQ(r2.code, ErrorCode::TransientFault) << r2.message;
    }
    EXPECT_EQ(server.breaker_state(sim::gh200().name, Algo::OneD, Precision::FP16,
                                   32, 32, 32),
              BreakerState::Open);
  }
  EXPECT_GE(counter("serve.breaker.trips"), 2.0);  // initial trip + >= 1 reopen
  EXPECT_EQ(counter("serve.breaker.closes"), 0.0);
  EXPECT_EQ(counter("serve.ok"), 0.0);
}

}  // namespace
}  // namespace kami
