// Chaos campaign invariants: point generation is deterministic and covers
// every fault class, and a mini campaign completes with zero contract
// violations (the 500-point campaign runs as the kami_chaos ctest job).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "serve/chaos.hpp"

namespace kami {
namespace {

TEST(ChaosPoints, GenerationIsDeterministic) {
  for (std::uint64_t seed : {0ull, 1ull, 42ull, 12345ull})
    EXPECT_EQ(serve::to_string(serve::chaos_point(seed)),
              serve::to_string(serve::chaos_point(seed)));
}

TEST(ChaosPoints, EveryFaultClassAndModeAppears) {
  std::set<std::string> faults;
  std::set<sim::ExecMode> modes;
  std::size_t with_deadline = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const serve::ChaosPoint p = serve::chaos_point(seed);
    faults.insert(serve::chaos_fault_name(p.fault));
    modes.insert(p.mode);
    if (p.deadline_cycles > 0.0) ++with_deadline;
  }
  EXPECT_EQ(faults.size(), 5u);  // none + 2 transient + permanent + alloc
  EXPECT_EQ(modes.size(), 3u);
  EXPECT_GT(with_deadline, 20u);
  EXPECT_LT(with_deadline, 180u);
}

TEST(ChaosCampaign, MiniCampaignHasZeroViolations) {
  const serve::ChaosReport rep = serve::run_chaos(/*base_seed=*/1, /*points=*/40);
  EXPECT_EQ(rep.ran, 40u);
  EXPECT_TRUE(rep.clean()) << rep.violations.front().point << ": "
                           << rep.violations.front().detail;
  EXPECT_EQ(rep.served_ok + rep.typed_errors, rep.ran);
  // Every typed error in a full-ladder campaign is a deadline abort, and each
  // one was replayed for determinism.
  for (const auto& [code, count] : rep.by_code) EXPECT_EQ(code, "deadline_exceeded");
  EXPECT_EQ(rep.deadline_replays, rep.typed_errors);
}

}  // namespace
}  // namespace kami
