// Fleet chaos campaign: deterministic point generation, clean fixed-seed
// campaigns, worker-count-invariant reports, and targeted single points that
// pin the campaign's hardest conditions (full blackout, storms against
// depth-1 queues, hedged dispatch) to a zero-violation outcome.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "serve/fleet_chaos.hpp"
#include "serve/slo.hpp"

namespace kami::serve {
namespace {

TEST(FleetChaos, PointGenerationIsDeterministic) {
  for (const std::uint64_t seed : {1ull, 7ull, 123456789ull}) {
    const FleetChaosPoint a = fleet_chaos_point(seed);
    const FleetChaosPoint b = fleet_chaos_point(seed);
    EXPECT_EQ(to_string(a), to_string(b)) << "seed " << seed;
    EXPECT_FALSE(to_string(a).empty());
  }
  EXPECT_NE(to_string(fleet_chaos_point(1)), to_string(fleet_chaos_point(2)));
}

TEST(FleetChaos, FixedSeedSmokeCampaignIsClean) {
  const auto slo = std::make_shared<SloTracker>();
  const FleetChaosReport rep = run_fleet_campaign(1, 40, /*workers=*/1, nullptr, slo);
  EXPECT_TRUE(rep.clean()) << rep.violations.size() << " violations, first: "
                           << (rep.violations.empty() ? std::string()
                                                      : rep.violations[0].detail);
  EXPECT_EQ(rep.ran, 40u);
  EXPECT_EQ(rep.served_ok + rep.typed_errors, rep.ran);
  EXPECT_FALSE(rep.by_rung.empty());
  // 40 seeds comfortably cover both sides of every distribution: some points
  // serve, some refuse typed, and the blackout machinery fires.
  EXPECT_GT(rep.served_ok, 0u);
  EXPECT_GT(rep.typed_errors, 0u);
  // One fleet request (plus storm and recovery traffic) per point, recorded
  // at fleet level only — the SLO tracker must have seen every point.
  EXPECT_GE(slo->total_requests(), rep.ran);
}

TEST(FleetChaos, CampaignReportIsWorkerCountInvariant) {
  const FleetChaosReport serial = run_fleet_campaign(11, 16, /*workers=*/1);
  const FleetChaosReport fanned = run_fleet_campaign(11, 16, /*workers=*/4);
  EXPECT_TRUE(serial.clean());
  EXPECT_TRUE(fanned.clean());
  EXPECT_EQ(serial.ran, fanned.ran);
  EXPECT_EQ(serial.served_ok, fanned.served_ok);
  EXPECT_EQ(serial.typed_errors, fanned.typed_errors);
  EXPECT_EQ(serial.failovers, fanned.failovers);
  EXPECT_EQ(serial.hedged, fanned.hedged);
  EXPECT_EQ(serial.storm_requests, fanned.storm_requests);
  EXPECT_EQ(serial.storm_rejected, fanned.storm_rejected);
  EXPECT_EQ(serial.by_code, fanned.by_code);
  EXPECT_EQ(serial.by_rung, fanned.by_rung);
  EXPECT_EQ(serial.by_device, fanned.by_device);
  EXPECT_EQ(serial.by_fault, fanned.by_fault);
}

// The campaign's worst corner, pinned explicitly so a distribution change in
// fleet_chaos_point() can never silently stop covering it: all four devices
// dark, a storm against depth-1 queues, and hedging armed. The point must
// run violation-free — the full outage comes back typed, every storm future
// resolves, and the devices recover once the blackout clears.
TEST(FleetChaos, FullBlackoutWithStormAndHedgeIsViolationFree) {
  FleetChaosPoint p = fleet_chaos_point(3);
  p.fault = ChaosFault::None;
  p.blackout_mask = 0xF;
  p.storm_requests = 8;
  p.queue_depth = 1;
  p.hedge = true;
  p.probe_cooldown = 1;
  const FleetChaosOutcome o = run_fleet_chaos_point(p);
  EXPECT_FALSE(o.violation) << o.detail;
  // A dark fleet serves nothing: storm futures come back as typed admission
  // refusals or dark-dispatch errors, never results.
  EXPECT_EQ(o.storm_ok, 0);
  EXPECT_GT(o.storm_rejected, 0);
  EXPECT_NE(o.code, ErrorCode::Ok);  // nothing can serve a fully dark fleet
}

TEST(FleetChaos, RouterMispredictionPointIsViolationFree) {
  FleetChaosPoint p = fleet_chaos_point(5);
  p.fault = ChaosFault::None;
  p.blackout_mask = 0;
  p.route_skew = {64.0, 0.25, 4.0, 1.0};  // deliberately wrong ranking
  const FleetChaosOutcome o = run_fleet_chaos_point(p);
  EXPECT_FALSE(o.violation) << o.detail;
}

TEST(FleetChaos, InjectedFaultPointsStayWithinTheContract) {
  // A handful of fixed seeds spanning the fault kinds; each point internally
  // asserts bit-correct-or-typed, failover identity, recovery, and replay.
  for (const std::uint64_t seed : {2ull, 9ull, 17ull, 33ull, 41ull}) {
    const FleetChaosPoint p = fleet_chaos_point(seed);
    const FleetChaosOutcome o = run_fleet_chaos_point(p);
    EXPECT_FALSE(o.violation) << "seed " << seed << ": " << o.detail << "\n  point: "
                              << to_string(p);
  }
}

}  // namespace
}  // namespace kami::serve
