// Request-scoped tracing on the serving path: span-tree shapes for the
// ladder's outcomes (clean serve, retry, degradation, breaker short-circuit,
// deadline abort), SLO accounting, the serve.* latency histograms, and the
// chaos campaign's worker-count-independent flight-recorder dump.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/profile_cache.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_span.hpp"
#include "serve/chaos.hpp"
#include "serve/serve.hpp"
#include "serve/slo.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace kami {
namespace {

using obs::FlightRecorder;
using obs::RequestTrace;
using serve::ErrorCode;
using serve::GemmServer;
using serve::ServeConfig;
using serve::SloTracker;

template <Scalar T>
std::pair<Matrix<T>, Matrix<T>> operands(std::size_t m, std::size_t n, std::size_t k,
                                         std::uint64_t seed = 1) {
  Rng rng(seed);
  Matrix<T> A = random_matrix<T>(m, k, rng);
  Matrix<T> B = random_matrix<T>(k, n, rng);
  return {std::move(A), std::move(B)};
}

const std::string* attr(const obs::Span* s, const char* key) {
  return s != nullptr ? s->find_attr(key) : nullptr;
}

std::string attr_or(const obs::Span* s, const char* key, const char* fallback = "") {
  const std::string* v = attr(s, key);
  return v != nullptr ? *v : std::string(fallback);
}

TEST(TraceServe, CleanServeProducesTheCanonicalSpanTree) {
  // The plan span's profile_cache attribute reads the process-wide cache;
  // start from a known-cold state regardless of test order.
  core::ProfileCache::global().clear();
  const auto flight = std::make_shared<FlightRecorder>();
  ServeConfig cfg;
  cfg.flight = flight;
  GemmServer server(cfg);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;

  const auto traces = flight->snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const RequestTrace& t = traces[0];
  EXPECT_EQ(t.request_id, "req-1");
  EXPECT_EQ(*t.find_meta("algo"), "KAMI-1D");
  EXPECT_EQ(*t.find_meta("m"), "64");
  EXPECT_FALSE(t.is_error());

  // request -> admit, queue_wait, rung[0] -> plan, attempt[1].
  EXPECT_EQ(attr_or(t.root(), "code"), "ok");
  EXPECT_EQ(attr_or(t.root(), "rung_label"), "kami_1d");
  EXPECT_EQ(attr_or(t.root(), "attempts"), "1");
  EXPECT_EQ(attr_or(t.root(), "degraded"), "false");
  EXPECT_EQ(attr_or(t.find_span("admit"), "result"), "admitted");
  ASSERT_NE(t.find_span("queue_wait"), nullptr);
  EXPECT_EQ(attr_or(t.find_span("queue_wait"), "cycles"), "0");

  const obs::Span* rung = t.find_span("rung[0]");
  ASSERT_NE(rung, nullptr);
  EXPECT_EQ(attr_or(rung, "label"), "kami_1d");
  EXPECT_EQ(attr_or(rung, "breaker"), "closed");
  // The plan span reports the resolved configuration and cache state (a
  // fresh process has no cached profile for this key).
  const obs::Span* plan = t.find_span("plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->parent, static_cast<std::int32_t>(rung->id));
  EXPECT_EQ(attr_or(plan, "profile_cache"), "miss");
  EXPECT_NE(attr(plan, "warps"), nullptr);

  const obs::Span* att = t.find_span("attempt[1]");
  ASSERT_NE(att, nullptr);
  EXPECT_EQ(att->parent, static_cast<std::int32_t>(rung->id));
  EXPECT_EQ(attr_or(att, "result"), "ok");
  // The attempt interval is exactly the simulated kernel latency, and the
  // root span ends on the same deterministic clock.
  EXPECT_EQ(att->duration_cycles(), r.profile.latency);
  EXPECT_EQ(t.root()->end_cycles, r.profile.latency);

  // Warm the cache for this configuration (mode is excluded from the key,
  // so the timing profile lands on exactly the key the plan span checks);
  // the next request's plan span flips to a hit.
  (void)core::timing_profile<fp16_t>(core::ProfileCache::global(), Algo::OneD,
                                     sim::gh200(), 64, 64, 64);
  (void)server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  const auto again = flight->snapshot();
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[1].request_id, "req-2");
  EXPECT_EQ(attr_or(again[1].find_span("plan"), "profile_cache"), "hit");
}

TEST(TraceServe, RetryPathRecordsFailedAttemptAndBackoffSpan) {
  const auto flight = std::make_shared<FlightRecorder>();
  ServeConfig cfg;
  cfg.flight = flight;
  cfg.backoff_base_ms = 0.25;
  GemmServer server(cfg);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);

  verify::FaultHooks fault;
  fault.warp_advance_skew = -1e9;
  fault.armed_runs = 1;
  const verify::ScopedFault guard(fault);

  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  ASSERT_EQ(r.attempts, 2);

  const auto traces = flight->snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const RequestTrace& t = traces[0];
  EXPECT_EQ(attr_or(t.find_span("attempt[1]"), "result"), "transient_fault");
  EXPECT_NE(attr(t.find_span("attempt[1]"), "error"), nullptr);
  EXPECT_EQ(attr_or(t.find_span("attempt[2]"), "result"), "ok");
  const obs::Span* backoff = t.find_span("backoff");
  ASSERT_NE(backoff, nullptr);
  EXPECT_EQ(attr_or(backoff, "delay_ms"), "0.25");
  // 0.25 ms at the device boost clock, in cycles.
  EXPECT_EQ(backoff->duration_cycles(), 0.25 * sim::gh200().boost_clock_ghz * 1e6);
  EXPECT_EQ(attr_or(t.root(), "attempts"), "2");
}

TEST(TraceServe, DegradationWalksRungsInOneTrace) {
  const auto flight = std::make_shared<FlightRecorder>();
  ServeConfig cfg;
  cfg.flight = flight;
  GemmServer server(cfg);
  const auto [A, B] = operands<double>(128, 128, 128);
  const auto r = server.serve<double>(Algo::ThreeD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;
  ASSERT_TRUE(r.degraded);

  const RequestTrace t = flight->snapshot().front();
  EXPECT_EQ(attr_or(t.root(), "degraded"), "true");
  EXPECT_EQ(attr_or(t.root(), "rung_label"), "kami_2d");
  const obs::Span* r0 = t.find_span("rung[0]");
  const obs::Span* r1 = t.find_span("rung[1]");
  ASSERT_NE(r0, nullptr);
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(attr_or(r0, "label"), "kami_3d");
  EXPECT_EQ(attr_or(r1, "label"), "kami_2d");
  // 3D at 128^3 FP64 is planner-infeasible: its attempt fails typed and the
  // plan span carries the planner's explanation instead of a configuration.
  const std::vector<const obs::Span*> attempts = t.find_all("attempt[1]");
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_EQ(attr_or(attempts[0], "result"), "resource_exhausted");
  EXPECT_EQ(attr_or(attempts[1], "result"), "ok");
  const std::vector<const obs::Span*> plans = t.find_all("plan");
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_NE(attr(plans[0], "plan_error"), nullptr);
}

TEST(TraceServe, BreakerShortCircuitIsVisibleInTheRungSpan) {
  const auto flight = std::make_shared<FlightRecorder>();
  ServeConfig cfg;
  cfg.flight = flight;
  cfg.breaker_failure_threshold = 1;
  cfg.breaker_cooldown_requests = 1;
  GemmServer server(cfg);
  const auto& dev = sim::gh200();
  const auto [A, B] = operands<fp16_t>(64, 64, 64);

  {
    verify::FaultHooks fault;
    fault.warp_advance_skew = -1e9;
    fault.armed_runs = -1;
    const verify::ScopedFault guard(fault);
    (void)server.serve<fp16_t>(Algo::OneD, dev, A, B);  // trips the breaker
  }
  (void)server.serve<fp16_t>(Algo::OneD, dev, A, B);  // short-circuited
  (void)server.serve<fp16_t>(Algo::OneD, dev, A, B);  // half-open probe

  const auto traces = flight->snapshot();
  ASSERT_EQ(traces.size(), 3u);
  const obs::Span* blocked = traces[1].find_span("rung[0]");
  EXPECT_EQ(attr_or(blocked, "breaker"), "open");
  EXPECT_EQ(attr_or(blocked, "skipped"), "breaker_open");
  // The short-circuited rung never opens a plan or attempt span; the request
  // is served by the reference rung in the same trace.
  EXPECT_EQ(traces[1].children_of(blocked->id).size(), 0u);
  EXPECT_EQ(attr_or(traces[1].root(), "rung_label"), "reference");
  EXPECT_EQ(attr_or(traces[2].find_span("rung[0]"), "breaker"), "half_open");
}

TEST(TraceServe, DeadlineAbortIsATypedErrorTrace) {
  const auto flight = std::make_shared<FlightRecorder>();
  ServeConfig cfg;
  cfg.flight = flight;
  GemmServer server(cfg);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  GemmOptions opt;
  opt.deadline_cycles = 50.0;
  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B, opt);
  ASSERT_EQ(r.code, ErrorCode::DeadlineExceeded);

  ASSERT_EQ(flight->error_count(), 1u);
  const RequestTrace t = flight->snapshot().front();
  EXPECT_TRUE(t.is_error());
  EXPECT_EQ(attr_or(t.root(), "code"), "deadline_exceeded");
  EXPECT_EQ(r.message, attr_or(t.root(), "error"));
  EXPECT_EQ(attr_or(t.find_span("attempt[1]"), "result"), "deadline_exceeded");
  // The abort charges exactly the spent budget to the logical clock.
  EXPECT_EQ(t.root()->end_cycles, 50.0);
}

TEST(TraceServe, InvalidRequestFailsInsideTheAdmitSpan) {
  const auto flight = std::make_shared<FlightRecorder>();
  ServeConfig cfg;
  cfg.flight = flight;
  GemmServer server(cfg);
  const Matrix<fp16_t> A(16, 8), B(16, 16);
  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_EQ(r.code, ErrorCode::InvalidRequest);
  const RequestTrace t = flight->snapshot().front();
  EXPECT_TRUE(t.is_error());
  EXPECT_EQ(attr_or(t.root(), "code"), "invalid_request");
  // Rejected before any rung ran.
  EXPECT_EQ(t.find_span("rung[0]"), nullptr);
}

TEST(TraceServe, TracingOffOrNoRecorderCostsNothing) {
  // No recorder attached (the default): no traces anywhere, results intact.
  GemmServer plain;
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  ASSERT_TRUE(plain.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B).ok());

  // Recorder attached but tracing disabled: the recorder stays empty.
  const auto flight = std::make_shared<FlightRecorder>();
  ServeConfig cfg;
  cfg.flight = flight;
  cfg.tracing = false;
  GemmServer server(cfg);
  ASSERT_TRUE(server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B).ok());
  EXPECT_EQ(flight->size(), 0u);
}

TEST(TraceServe, FreshServersProduceByteIdenticalTraces) {
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto run_once = [&] {
    const auto flight = std::make_shared<FlightRecorder>();
    ServeConfig cfg;
    cfg.flight = flight;
    GemmServer server(cfg);
    (void)server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
    return flight->snapshot().front().canonical_text();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TraceServe, AsyncRequestsAreTracedWithQueueWait) {
  const auto flight = std::make_shared<FlightRecorder>();
  ServeConfig cfg;
  cfg.flight = flight;
  cfg.async_workers = 2;
  GemmServer server(cfg);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  auto f1 = server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  auto f2 = server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_TRUE(f1.get().ok());
  ASSERT_TRUE(f2.get().ok());

  const auto traces = flight->snapshot();
  ASSERT_EQ(traces.size(), 2u);
  for (const RequestTrace& t : traces) {
    EXPECT_FALSE(t.is_error());
    const obs::Span* wait = t.find_span("queue_wait");
    ASSERT_NE(wait, nullptr);
    // Async queue wait is wall-derived: nonnegative, and span-consistent.
    EXPECT_GE(wait->duration_cycles(), 0.0);
    EXPECT_EQ(attr_or(t.root(), "code"), "ok");
  }
}

TEST(SloAccounting, ShapeClassesBucketByFlops) {
  EXPECT_EQ(serve::shape_class(0, 64, 64), "degenerate");
  EXPECT_EQ(serve::shape_class(16, 16, 16), "tiny");       // 2*16^3 = 8192
  EXPECT_EQ(serve::shape_class(64, 64, 64), "small");      // 2^19
  EXPECT_EQ(serve::shape_class(128, 128, 128), "medium");  // 2^22
  EXPECT_EQ(serve::shape_class(512, 512, 512), "large");   // 2^28
}

TEST(SloAccounting, TrackerAccountsPerClassWithAttainment) {
  SloTracker slo;
  slo.record(64, 64, 64, ErrorCode::Ok, "kami_1d", 1000.0, 2000.0);   // met
  slo.record(64, 64, 64, ErrorCode::Ok, "kami_1d", 3000.0, 2000.0);  // missed
  slo.record(64, 64, 64, ErrorCode::DeadlineExceeded, "", 2000.0, 2000.0);
  slo.record(64, 64, 64, ErrorCode::Ok, "kami_2d", 500.0, 0.0);  // no deadline
  slo.record(0, 64, 64, ErrorCode::Ok, "degenerate", 0.0, 0.0);
  EXPECT_EQ(slo.total_requests(), 5u);

  const obs::Json doc = slo.to_json();
  const obs::Json& classes = doc.at("classes");
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes.at(0).at("class").as_string(), "degenerate");
  const obs::Json& small = classes.at(1);
  EXPECT_EQ(small.at("class").as_string(), "small");
  EXPECT_EQ(small.at("requests").as_number(), 4.0);
  EXPECT_EQ(small.at("ok").as_number(), 3.0);
  EXPECT_EQ(small.at("errors").as_number(), 1.0);
  EXPECT_EQ(small.at("by_rung").at("kami_1d").as_number(), 2.0);
  EXPECT_EQ(small.at("by_code").at("deadline_exceeded").as_number(), 1.0);
  EXPECT_EQ(small.at("deadline").at("with_deadline").as_number(), 3.0);
  EXPECT_EQ(small.at("deadline").at("met").as_number(), 1.0);
  EXPECT_NEAR(small.at("deadline").at("attainment").as_number(), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(small.at("latency_cycles").at("count").as_number(), 4.0);
  EXPECT_EQ(small.at("latency_cycles").at("max").as_number(), 3000.0);

  slo.clear();
  EXPECT_EQ(slo.total_requests(), 0u);
}

TEST(SloAccounting, MergePreservesObservationOrder) {
  SloTracker a, b;
  a.record(64, 64, 64, ErrorCode::Ok, "kami_1d", 100.0, 0.0);
  b.record(64, 64, 64, ErrorCode::Ok, "kami_1d", 200.0, 0.0);
  a.merge_from(b);
  EXPECT_EQ(a.total_requests(), 2u);

  SloTracker direct;
  direct.record(64, 64, 64, ErrorCode::Ok, "kami_1d", 100.0, 0.0);
  direct.record(64, 64, 64, ErrorCode::Ok, "kami_1d", 200.0, 0.0);
  EXPECT_EQ(a.to_json().dump(), direct.to_json().dump());
}

// The empty-distribution contract end to end: a shape class whose every
// request was refused at admission has requests/errors/by_code accounting
// but zero latency samples, and its export must still carry a complete,
// NaN-free latency_cycles block with count 0 (the old export dropped the
// block entirely, so consumers branched on presence — or crashed).
TEST(SloAccounting, RejectedOnlyClassExportsZeroLatencyBlock) {
  SloTracker slo;
  slo.record_rejected(64, 64, 64);
  slo.record_rejected(64, 64, 64);
  EXPECT_EQ(slo.total_requests(), 2u);

  const obs::Json doc = slo.to_json();
  const obs::Json& cls = doc.at("classes").at(0);
  EXPECT_EQ(cls.at("class").as_string(), "small");
  EXPECT_EQ(cls.at("requests").as_number(), 2.0);
  EXPECT_EQ(cls.at("ok").as_number(), 0.0);
  EXPECT_EQ(cls.at("errors").as_number(), 2.0);
  EXPECT_EQ(cls.at("by_code").at("resource_exhausted").as_number(), 2.0);
  const obs::Json& lat = cls.at("latency_cycles");
  for (const char* stat : {"count", "mean", "p50", "p90", "p99", "max"}) {
    EXPECT_DOUBLE_EQ(lat.at(stat).as_number(), 0.0) << stat;
    EXPECT_FALSE(std::isnan(lat.at(stat).as_number())) << stat;
  }
  // The serialized form is parseable JSON with no NaN tokens.
  EXPECT_EQ(slo.to_json().dump().find("nan"), std::string::npos);
}

TEST(SloAccounting, ServerFeedsTheAttachedTracker) {
  const auto slo = std::make_shared<SloTracker>();
  ServeConfig cfg;
  cfg.slo = slo;  // SLO accounting works without a flight recorder
  GemmServer server(cfg);
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  ASSERT_TRUE(server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B).ok());
  GemmOptions opt;
  opt.deadline_cycles = 50.0;
  ASSERT_FALSE(server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B, opt).ok());

  EXPECT_EQ(slo->total_requests(), 2u);
  const obs::Json doc = slo->to_json();
  const obs::Json& cls = doc.at("classes").at(0);
  EXPECT_EQ(cls.at("class").as_string(), "small");
  EXPECT_EQ(cls.at("deadline").at("with_deadline").as_number(), 1.0);
  EXPECT_EQ(cls.at("deadline").at("met").as_number(), 0.0);
}

TEST(TraceServe, LatencyHistogramsAreExported) {
  obs::ScopedMetricsReset reset;
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(64, 64, 64);
  const auto r = server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  ASSERT_TRUE(r.ok()) << r.message;

  auto& metrics = obs::MetricRegistry::global();
  const auto& e2e = metrics.histogram("serve.end_to_end_cycles");
  EXPECT_EQ(e2e.count(), 1u);
  EXPECT_EQ(e2e.max(), r.profile.latency);  // sync: end-to-end == kernel latency
  const auto& wait = metrics.histogram("serve.queue_wait_cycles");
  EXPECT_EQ(wait.count(), 1u);
  EXPECT_EQ(wait.max(), 0.0);  // sync requests never queue
}

// The campaign determinism contract from the ISSUE: the flight-recorder dump
// (traces harvested from per-point servers, folded in seed order) and the
// SLO export are byte-identical at every worker count.
TEST(CampaignTraceDeterminism, FlightDumpAndSloAreWorkerCountInvariant) {
  const auto run = [](int workers) {
    const auto flight = std::make_shared<FlightRecorder>();
    const auto slo = std::make_shared<SloTracker>();
    const serve::ChaosReport rep =
        serve::run_campaign(/*base_seed=*/7, /*points=*/24, workers, flight, slo);
    EXPECT_TRUE(rep.clean());
    std::ostringstream dump;
    flight->dump(dump);
    return std::pair<std::string, std::string>{dump.str(), slo->to_json().dump()};
  };
  const auto serial = run(1);
  EXPECT_GT(serial.first.size(), 2u);
  for (const int workers : {2, 4, 8}) {
    const auto parallel = run(workers);
    EXPECT_EQ(parallel.first, serial.first) << "workers=" << workers;
    EXPECT_EQ(parallel.second, serial.second) << "workers=" << workers;
  }

  // Every typed error in the campaign is retained as an error trace.
  const auto flight = std::make_shared<FlightRecorder>();
  const serve::ChaosReport rep = serve::run_campaign(7, 24, 2, flight, nullptr);
  EXPECT_EQ(flight->error_count(), rep.typed_errors);
  EXPECT_EQ(flight->size(), rep.ran);  // 24 points fit the ok ring
}

}  // namespace
}  // namespace kami
