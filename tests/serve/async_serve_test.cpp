// submit_async contract: results bit-equal the synchronous path, the
// submitting thread's FaultHooks are replayed in the worker, a full queue
// refuses with a typed ResourceExhausted future (never blocking, never
// touching breakers or retries), and the destructor drains every accepted
// request so futures are always eventually ready.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <iterator>
#include <vector>

#include <memory>

#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "serve/slo.hpp"
#include "util/rng.hpp"
#include "verify/invariants.hpp"

namespace kami {
namespace {

using serve::ErrorCode;
using serve::GemmServer;
using serve::ServeConfig;
using serve::ServeResult;

double counter(const char* name) {
  return obs::MetricRegistry::global().counter(name).value();
}

template <Scalar T>
std::pair<Matrix<T>, Matrix<T>> operands(std::size_t m, std::size_t n, std::size_t k,
                                         std::uint64_t seed = 1) {
  Rng rng(seed);
  Matrix<T> A = random_matrix<T>(m, k, rng);
  Matrix<T> B = random_matrix<T>(k, n, rng);
  return {std::move(A), std::move(B)};
}

template <Scalar T>
bool bits_equal(const Matrix<T>& a, const Matrix<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

TEST(AsyncServe, ResultsBitEqualSynchronousServe) {
  GemmServer sync_server;
  GemmServer async_server;
  const std::size_t shapes[][3] = {{32, 32, 32}, {64, 64, 64}, {48, 16, 64}};
  std::vector<std::future<ServeResult<fp16_t>>> futures;
  std::vector<ServeResult<fp16_t>> want;
  for (std::size_t i = 0; i < std::size(shapes); ++i) {
    const auto [A, B] =
        operands<fp16_t>(shapes[i][0], shapes[i][1], shapes[i][2], 100 + i);
    want.push_back(sync_server.serve<fp16_t>(Algo::OneD, sim::gh200(), A, B));
    futures.push_back(
        async_server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const ServeResult<fp16_t> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.message;
    EXPECT_EQ(got.code, want[i].code);
    EXPECT_EQ(got.rung_label, want[i].rung_label);
    EXPECT_EQ(got.attempts, want[i].attempts);
    EXPECT_EQ(got.warps, want[i].warps);
    EXPECT_TRUE(bits_equal(got.C, want[i].C)) << "entry " << i;
  }
}

TEST(AsyncServe, SubmitterFaultHooksReplayInWorker) {
  GemmServer server;
  const auto [A, B] = operands<fp16_t>(32, 32, 32);

  std::future<ServeResult<fp16_t>> fut;
  {
    // Transient fault armed only for the duration of the submit call. The
    // worker must still see it (snapshot semantics), fail once, retry, and
    // serve on the second attempt.
    verify::FaultHooks hooks;
    hooks.warp_advance_skew = -1e9;
    hooks.armed_runs = 1;
    const verify::ScopedFault fault(hooks);
    fut = server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B);
  }
  const ServeResult<fp16_t> r = fut.get();
  ASSERT_TRUE(r.ok()) << r.message;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.rung_label, "kami_1d");
  // The submitting thread's own hooks are untouched afterwards.
  EXPECT_EQ(verify::fault_hooks().warp_advance_skew, 0.0);
}

TEST(AsyncServe, FullQueueRefusesTypedWithoutTouchingBreakers) {
  obs::ScopedMetricsReset reset;
  ServeConfig cfg;
  cfg.async_workers = 1;
  cfg.async_queue_depth = 2;
  cfg.backoff_base_ms = 30.0;  // transient-fault retries keep the worker busy
  cfg.backoff_max_ms = 30.0;

  constexpr std::size_t kBurst = 24;
  std::vector<std::future<ServeResult<fp16_t>>> futures;
  std::size_t refused = 0;
  {
    GemmServer server(cfg);
    const auto [A, B] = operands<fp16_t>(32, 32, 32);
    // First request carries a transient fault: the lone worker spends the
    // retry backoff on it, so the burst below overflows the depth-2 queue.
    {
      verify::FaultHooks hooks;
      hooks.warp_advance_skew = -1e9;
      hooks.armed_runs = 1;
      const verify::ScopedFault fault(hooks);
      futures.push_back(
          server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));
    }
    for (std::size_t i = 1; i < kBurst; ++i)
      futures.push_back(
          server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));

    for (auto& f : futures) {
      const ServeResult<fp16_t> r = f.get();
      if (r.code == ErrorCode::ResourceExhausted) {
        ++refused;
        EXPECT_NE(r.message.find("async request queue full (depth 2)"),
                  std::string::npos)
            << r.message;
        EXPECT_EQ(r.attempts, 0);  // refused before any rung ran
      } else {
        ASSERT_TRUE(r.ok()) << r.message;
      }
    }
    // Overload never counts against the resilience machinery: the rung's
    // breaker stays closed and no refusal burned a retry.
    EXPECT_EQ(server.breaker_state(sim::gh200().name, Algo::OneD, Precision::FP16,
                                   32, 32, 32),
              serve::BreakerState::Closed);
  }
  EXPECT_GT(refused, 0u) << "burst never overflowed the depth-2 queue";
  EXPECT_EQ(counter("serve.async.submitted"), static_cast<double>(kBurst));
  EXPECT_EQ(counter("serve.async.accepted") + counter("serve.async.rejected"),
            static_cast<double>(kBurst));
  EXPECT_EQ(counter("serve.async.rejected"), static_cast<double>(refused));
}

// Queue-full refusals must reach the attached SLO tracker: previously a
// rejected submission vanished from SLO accounting entirely (the shape class
// under-reported its request and error counts), and a class consisting only
// of refusals had no export at all.
TEST(AsyncServe, QueueRefusalsLandInSloAccounting) {
  ServeConfig cfg;
  cfg.async_workers = 1;
  cfg.async_queue_depth = 2;
  cfg.backoff_base_ms = 30.0;
  cfg.backoff_max_ms = 30.0;
  const auto slo = std::make_shared<serve::SloTracker>();
  cfg.slo = slo;

  constexpr std::size_t kBurst = 24;
  std::size_t refused = 0;
  {
    GemmServer server(cfg);
    const auto [A, B] = operands<fp16_t>(32, 32, 32);
    std::vector<std::future<ServeResult<fp16_t>>> futures;
    {
      verify::FaultHooks hooks;  // stall the lone worker (see the test above)
      hooks.warp_advance_skew = -1e9;
      hooks.armed_runs = 1;
      const verify::ScopedFault fault(hooks);
      futures.push_back(
          server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));
    }
    for (std::size_t i = 1; i < kBurst; ++i)
      futures.push_back(
          server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));
    for (auto& f : futures)
      if (f.get().code == ErrorCode::ResourceExhausted) ++refused;
  }
  ASSERT_GT(refused, 0u) << "burst never overflowed the depth-2 queue";

  // Every submission — served or refused — is one SLO request; the refusals
  // are errors coded resource_exhausted with no latency observation.
  EXPECT_EQ(slo->total_requests(), kBurst);
  const obs::Json doc = slo->to_json();
  const obs::Json& cls = doc.at("classes").at(0);
  EXPECT_EQ(cls.at("class").as_string(), "tiny");
  EXPECT_EQ(cls.at("requests").as_number(), static_cast<double>(kBurst));
  EXPECT_EQ(cls.at("by_code").at("resource_exhausted").as_number(),
            static_cast<double>(refused));
  EXPECT_EQ(cls.at("latency_cycles").at("count").as_number(),
            static_cast<double>(kBurst - refused));
}

TEST(AsyncServe, DestructorDrainsEveryAcceptedRequest) {
  std::vector<std::future<ServeResult<fp16_t>>> futures;
  {
    ServeConfig cfg;
    cfg.async_workers = 2;
    GemmServer server(cfg);
    for (std::uint64_t s = 0; s < 8; ++s) {
      const auto [A, B] = operands<fp16_t>(32, 32, 32, s + 1);
      futures.push_back(
          server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), A, B));
    }
  }  // ~GemmServer drains the queue and joins the workers
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    const ServeResult<fp16_t> r = f.get();
    EXPECT_TRUE(r.ok() || r.code == ErrorCode::ResourceExhausted) << r.message;
  }
}

TEST(AsyncServe, ErrorsArriveTypedNotAsExceptions) {
  GemmServer server;
  // Inner dimensions disagree: must come back as a typed InvalidRequest
  // through the future, not an exception.
  Matrix<fp16_t> A(32, 16), B(32, 32);
  auto fut = server.submit_async<fp16_t>(Algo::OneD, sim::gh200(), std::move(A),
                                         std::move(B));
  const ServeResult<fp16_t> r = fut.get();
  EXPECT_EQ(r.code, ErrorCode::InvalidRequest);
  EXPECT_FALSE(r.message.empty());
}

}  // namespace
}  // namespace kami
