// The verify subsystem's own tests: point serialization round-trips, the
// curated smoke suite passes, fuzzing is deterministic (so `kami_verify
// repro <seed>` really replays a failure), and injected cycle-accounting
// faults are caught by the invariant layer — the acceptance test that the
// checks fire, not just compile.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kami.hpp"
#include "sim/trace.hpp"
#include "verify/differential.hpp"
#include "verify/invariants.hpp"

namespace kami::verify {
namespace {

TEST(CheckPointSpec, RoundTripsThroughString) {
  for (const CheckPoint& p : smoke_points()) {
    const std::string spec = to_string(p);
    EXPECT_EQ(to_string(point_from_string(spec)), spec);
  }
  for (std::uint64_t seed : {1ull, 7ull, 99ull, 123456789ull}) {
    const CheckPoint p = random_point(seed);
    const std::string spec = to_string(p);
    EXPECT_EQ(to_string(point_from_string(spec)), spec);
  }
}

TEST(CheckPointSpec, EncodesDeviceNameSpaces) {
  CheckPoint p;
  p.device = "RTX 5090";
  const std::string spec = to_string(p);
  EXPECT_EQ(spec.find(' '), spec.find(" prec="));  // no space inside the name
  EXPECT_EQ(point_from_string(spec).device, "RTX 5090");
}

TEST(CheckPointSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)point_from_string("device=GH200 bogus_key=1"),
               PreconditionError);
  EXPECT_THROW((void)point_from_string("device=GH200 m"), PreconditionError);
}

TEST(Differential, SmokeSuitePasses) {
  for (const CheckPoint& p : smoke_points()) {
    const CheckResult r = check_point(p);
    EXPECT_TRUE(r.ok) << to_string(p) << ": " << r.detail;
  }
}

TEST(Differential, UnsupportedPrecisionIsASkipNotAFailure) {
  CheckPoint p;
  p.device = "RTX 5090";  // no FP64 tensor path
  p.precision = Precision::FP64;
  const CheckResult r = check_point(p);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.skipped);
}

TEST(Differential, InfeasiblePointIsASkipNotAFailure) {
  CheckPoint p;
  p.algo = core::Algo::ThreeD;
  p.options.warps = 27;  // 3x3x3 grid cannot divide 64^3
  const CheckResult r = check_point(p);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.skipped) << r.detail;
}

TEST(Fuzz, SameSeedSameOutcome) {
  const FuzzReport a = run_fuzz(5, 8);
  const FuzzReport b = run_fuzz(5, 8);
  EXPECT_EQ(a.ran, b.ran);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.skipped, b.skipped);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].detail, b.failures[i].detail);
  }
  // And the generator itself is stable, which is what repro relies on.
  EXPECT_EQ(to_string(random_point(5)), to_string(random_point(5)));
}

TEST(Fuzz, ShortRunIsClean) {
  const FuzzReport rep = run_fuzz(1, 10);
  EXPECT_EQ(rep.ran, 10u);
  EXPECT_TRUE(rep.failures.empty())
      << rep.failures.front().seed << ": " << rep.failures.front().detail;
}

#if KAMI_CHECK_INVARIANTS

GemmResult<fp16_t> small_gemm() {
  const Matrix<fp16_t> A(32, 32), B(32, 32);
  return gemm(core::Algo::OneD, sim::gh200(), A, B);
}

TEST(Invariants, WarpClockRewindIsCaught) {
  // A huge negative skew makes some op's end time precede the warp clock;
  // the monotonicity invariant must fire as InvariantViolation (never as
  // PreconditionError, which callers treat as "infeasible").
  FaultHooks hooks;
  hooks.warp_advance_skew = -1e9;
  const ScopedFault fault(hooks);
  EXPECT_THROW((void)small_gemm(), InvariantViolation);
}

TEST(Invariants, PortBusyOverchargeIsCaught) {
  // Charging more busy cycles than the timeline reserved breaks the
  // conservation invariant busy <= free_at.
  FaultHooks hooks;
  hooks.port_busy_skew = 1e6;
  const ScopedFault fault(hooks);
  EXPECT_THROW((void)small_gemm(), InvariantViolation);
}

TEST(Invariants, ScopedFaultRestoresCleanState) {
  {
    FaultHooks hooks;
    hooks.warp_advance_skew = -1e9;
    const ScopedFault fault(hooks);
    EXPECT_THROW((void)small_gemm(), InvariantViolation);
  }
  EXPECT_NO_THROW((void)small_gemm());  // hooks restored on unwind
}

TEST(Invariants, SelftestReportsClean) { EXPECT_EQ(invariant_selftest(), ""); }

TEST(Invariants, MalformedTraceEventsAreRejected) {
  sim::Trace trace;
  sim::TraceEvent ok;
  ok.warp = 0;
  ok.issue = 1.0;
  ok.start = 2.0;
  ok.end = 3.0;
  EXPECT_NO_THROW(trace.record(ok));

  sim::TraceEvent negative_warp = ok;
  negative_warp.warp = -1;
  EXPECT_THROW(trace.record(negative_warp), InvariantViolation);

  sim::TraceEvent inverted = ok;
  inverted.start = 4.0;  // start > end
  EXPECT_THROW(trace.record(inverted), InvariantViolation);

  sim::TraceEvent out_of_order = ok;
  out_of_order.issue = 0.5;  // earlier than warp 0's last issue (1.0)
  out_of_order.start = 1.0;
  out_of_order.end = 1.0;
  EXPECT_THROW(trace.record(out_of_order), InvariantViolation);

  // A different warp keeps its own watermark.
  sim::TraceEvent other_warp = out_of_order;
  other_warp.warp = 3;
  EXPECT_NO_THROW(trace.record(other_warp));
}

#endif  // KAMI_CHECK_INVARIANTS

}  // namespace
}  // namespace kami::verify
