// The verify subsystem's own tests: point serialization round-trips, the
// curated smoke suite passes, fuzzing is deterministic (so `kami_verify
// repro <seed>` really replays a failure), and injected cycle-accounting
// faults are caught by the invariant layer — the acceptance test that the
// checks fire, not just compile.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kami.hpp"
#include "model/predictor.hpp"
#include "sim/trace.hpp"
#include "verify/differential.hpp"
#include "verify/invariants.hpp"
#include "verify/model_check.hpp"

namespace kami::verify {
namespace {

TEST(CheckPointSpec, RoundTripsThroughString) {
  for (const CheckPoint& p : smoke_points()) {
    const std::string spec = to_string(p);
    EXPECT_EQ(to_string(point_from_string(spec)), spec);
  }
  for (std::uint64_t seed : {1ull, 7ull, 99ull, 123456789ull}) {
    const CheckPoint p = random_point(seed);
    const std::string spec = to_string(p);
    EXPECT_EQ(to_string(point_from_string(spec)), spec);
  }
}

TEST(CheckPointSpec, EncodesDeviceNameSpaces) {
  CheckPoint p;
  p.device = "RTX 5090";
  const std::string spec = to_string(p);
  EXPECT_EQ(spec.find(' '), spec.find(" prec="));  // no space inside the name
  EXPECT_EQ(point_from_string(spec).device, "RTX 5090");
}

TEST(CheckPointSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)point_from_string("device=GH200 bogus_key=1"),
               PreconditionError);
  EXPECT_THROW((void)point_from_string("device=GH200 m"), PreconditionError);
}

TEST(Differential, SmokeSuitePasses) {
  for (const CheckPoint& p : smoke_points()) {
    const CheckResult r = check_point(p);
    EXPECT_TRUE(r.ok) << to_string(p) << ": " << r.detail;
  }
}

TEST(Differential, UnsupportedPrecisionIsASkipNotAFailure) {
  CheckPoint p;
  p.device = "RTX 5090";  // no FP64 tensor path
  p.precision = Precision::FP64;
  const CheckResult r = check_point(p);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.skipped);
}

TEST(Differential, InfeasiblePointIsASkipNotAFailure) {
  CheckPoint p;
  p.algo = core::Algo::ThreeD;
  p.options.warps = 27;  // 3x3x3 grid cannot divide 64^3
  const CheckResult r = check_point(p);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.skipped) << r.detail;
}

TEST(Fuzz, SameSeedSameOutcome) {
  const FuzzReport a = run_fuzz(5, 8);
  const FuzzReport b = run_fuzz(5, 8);
  EXPECT_EQ(a.ran, b.ran);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.skipped, b.skipped);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].seed, b.failures[i].seed);
    EXPECT_EQ(a.failures[i].detail, b.failures[i].detail);
  }
  // And the generator itself is stable, which is what repro relies on.
  EXPECT_EQ(to_string(random_point(5)), to_string(random_point(5)));
}

TEST(Fuzz, ShortRunIsClean) {
  const FuzzReport rep = run_fuzz(1, 10);
  EXPECT_EQ(rep.ran, 10u);
  EXPECT_TRUE(rep.failures.empty())
      << rep.failures.front().seed << ": " << rep.failures.front().detail;
}

// The model-divergence checker: the calibrated closed forms and the cycle
// simulator must agree within the self-calibrated band at every checked
// point, disagreement must surface as the *typed* failure (ModelDivergence,
// reported through CheckResult), and the fuzz harness must be replayable.

TEST(ModelCheck, CuratedFeasiblePointsPass) {
  // The differential smoke suite doubles as the model corpus (shared point
  // grammar); infeasible/unsupported entries must skip, never fail.
  for (const CheckPoint& p : smoke_points()) {
    const CheckResult r = check_model_point(p);
    EXPECT_TRUE(r.ok) << to_string(p) << ": " << r.detail;
  }
}

TEST(ModelCheck, InfeasibleAndUnsupportedPointsSkip) {
  CheckPoint fp64_on_rtx;
  fp64_on_rtx.device = "RTX 5090";
  fp64_on_rtx.precision = Precision::FP64;
  CheckResult r = check_model_point(fp64_on_rtx);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.skipped);

  CheckPoint infeasible;
  infeasible.algo = core::Algo::ThreeD;
  infeasible.options.warps = 27;  // 3x3x3 grid cannot divide 64^3
  r = check_model_point(infeasible);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.skipped) << r.detail;
}

TEST(ModelCheck, DivergenceIsTypedAndReported) {
  // A synthetic divergent prediction: the typed exception carries the
  // context, the tolerance and both cycle counts.
  model::Prediction pred;
  pred.cycles = 100.0;
  pred.analytic_cycles = 100.0;
  pred.calibrated = true;
  pred.confident = true;
  pred.rel_band = 0.05;
  pred.samples = 5;
  try {
    model::Predictor::require_within_band(pred, 200.0, model::PredictorConfig{},
                                          "divergence test");
    FAIL() << "expected ModelDivergence";
  } catch (const model::ModelDivergence& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("divergence test"), std::string::npos);
  }
}

TEST(ModelCheck, FuzzIsDeterministicAndClean) {
  const FuzzReport a = run_model_fuzz(3, 6);
  const FuzzReport b = run_model_fuzz(3, 6);
  EXPECT_EQ(a.ran, 6u);
  EXPECT_EQ(a.passed, b.passed);
  EXPECT_EQ(a.skipped, b.skipped);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  EXPECT_TRUE(a.failures.empty())
      << a.failures.front().seed << ": " << a.failures.front().detail;
}

TEST(ModelCheck, FuzzReportIsWorkerCountInvariant) {
  const FuzzReport serial = run_model_fuzz(11, 6, 1);
  const FuzzReport parallel = run_model_fuzz(11, 6, 4);
  EXPECT_EQ(parallel.ran, serial.ran);
  EXPECT_EQ(parallel.passed, serial.passed);
  EXPECT_EQ(parallel.skipped, serial.skipped);
  EXPECT_EQ(parallel.failures.size(), serial.failures.size());
}

#if KAMI_CHECK_INVARIANTS

GemmResult<fp16_t> small_gemm() {
  const Matrix<fp16_t> A(32, 32), B(32, 32);
  return gemm(core::Algo::OneD, sim::gh200(), A, B);
}

TEST(Invariants, WarpClockRewindIsCaught) {
  // A huge negative skew makes some op's end time precede the warp clock;
  // the monotonicity invariant must fire as InvariantViolation (never as
  // PreconditionError, which callers treat as "infeasible").
  FaultHooks hooks;
  hooks.warp_advance_skew = -1e9;
  const ScopedFault fault(hooks);
  EXPECT_THROW((void)small_gemm(), InvariantViolation);
}

TEST(Invariants, PortBusyOverchargeIsCaught) {
  // Charging more busy cycles than the timeline reserved breaks the
  // conservation invariant busy <= free_at.
  FaultHooks hooks;
  hooks.port_busy_skew = 1e6;
  const ScopedFault fault(hooks);
  EXPECT_THROW((void)small_gemm(), InvariantViolation);
}

TEST(Invariants, ScopedFaultRestoresCleanState) {
  {
    FaultHooks hooks;
    hooks.warp_advance_skew = -1e9;
    const ScopedFault fault(hooks);
    EXPECT_THROW((void)small_gemm(), InvariantViolation);
  }
  EXPECT_NO_THROW((void)small_gemm());  // hooks restored on unwind
}

TEST(Invariants, SelftestReportsClean) { EXPECT_EQ(invariant_selftest(), ""); }

TEST(Invariants, MalformedTraceEventsAreRejected) {
  sim::Trace trace;
  sim::TraceEvent ok;
  ok.warp = 0;
  ok.issue = 1.0;
  ok.start = 2.0;
  ok.end = 3.0;
  EXPECT_NO_THROW(trace.record(ok));

  sim::TraceEvent negative_warp = ok;
  negative_warp.warp = -1;
  EXPECT_THROW(trace.record(negative_warp), InvariantViolation);

  sim::TraceEvent inverted = ok;
  inverted.start = 4.0;  // start > end
  EXPECT_THROW(trace.record(inverted), InvariantViolation);

  sim::TraceEvent out_of_order = ok;
  out_of_order.issue = 0.5;  // earlier than warp 0's last issue (1.0)
  out_of_order.start = 1.0;
  out_of_order.end = 1.0;
  EXPECT_THROW(trace.record(out_of_order), InvariantViolation);

  // A different warp keeps its own watermark.
  sim::TraceEvent other_warp = out_of_order;
  other_warp.warp = 3;
  EXPECT_NO_THROW(trace.record(other_warp));
}

#endif  // KAMI_CHECK_INVARIANTS

}  // namespace
}  // namespace kami::verify
