// Figure 15: theoretical vs measured execution cycles, broken into
// communication and computation, in FP16 on GH200 and RTX 5090.
//
// The measured numbers come from a single simulated thread block (the paper
// uses clock() around a single block: 4 warps for 1D/2D, 8 for 3D); the
// theoretical bars are the Section 4 formulas. Measured computation exceeds
// theory on GH200 because of the 62% max MMA issue efficiency the paper
// cites (§5.6.2); measured communication exceeds theory by the
// per-transaction instruction overhead.
#include "bench_common.hpp"
#include "model/cost_model.hpp"

namespace kami::bench {
namespace {

template <Scalar T>
void panel(const sim::DeviceSpec& dev) {
  TablePrinter table({"order", "algo", "theory comm", "meas comm", "theory comp",
                      "meas comp", "theory total", "meas total"});
  for (std::size_t n : {32u, 64u, 96u, 128u}) {
    struct Config {
      Algo algo;
      int warps;
    };
    for (const auto cfg : {Config{Algo::OneD, 4}, Config{Algo::TwoD, 4},
                           Config{Algo::ThreeD, 8}}) {
      auto params =
          model::Params::from_device(dev, num_traits<T>::precision, n, n, n, cfg.warps);
      model::Cost cost;
      switch (cfg.algo) {
        case Algo::OneD: cost = model::cost_1d(params); break;
        case Algo::TwoD: cost = model::cost_2d(params); break;
        case Algo::ThreeD: cost = model::cost_3d(params); break;
      }
      GemmOptions opt;
      opt.warps = cfg.warps;
      Rng rng(n + static_cast<std::size_t>(cfg.algo));
      const auto A = random_matrix<T>(n, n, rng);
      const auto B = random_matrix<T>(n, n, rng);
      std::optional<GemmResult<T>> r;
      try {
        r.emplace(kami::gemm(cfg.algo, dev, A, B, opt));
      } catch (const PreconditionError&) {
        table.add_row({std::to_string(n), algo_name(cfg.algo),
                       fmt_double(cost.comm_cycles, 0), "overflow",
                       fmt_double(cost.compute_cycles, 0), "-", fmt_double(cost.T_all, 0),
                       "-"});
        continue;
      }
      const auto& bd = r->profile.mean_breakdown;
      const double meas_comm = bd.smem_comm + bd.reg_copy;
      const double meas_comp = bd.compute;
      table.add_row({std::to_string(n), algo_name(cfg.algo),
                     fmt_double(cost.comm_cycles, 0), fmt_double(meas_comm, 0),
                     fmt_double(cost.compute_cycles, 0), fmt_double(meas_comp, 0),
                     fmt_double(cost.T_all, 0), fmt_double(r->profile.latency, 0)});

      // Structured breakdown for the exported run: the five simulator
      // categories plus the analytic-model reference values.
      obs::Breakdown out;
      out.name = dev.name + "/fp16/n=" + std::to_string(n) + "/" + algo_name(cfg.algo);
      out.categories = {{"smem_comm", bd.smem_comm},
                        {"gmem", bd.gmem},
                        {"reg_copy", bd.reg_copy},
                        {"compute", bd.compute},
                        {"sync_wait", bd.sync_wait},
                        {"measured_total", r->profile.latency},
                        {"theory_comm", cost.comm_cycles},
                        {"theory_compute", cost.compute_cycles},
                        {"theory_total", cost.T_all}};
      run_report().add_breakdown(std::move(out));
    }
  }
  emit_table(table, "Fig 15: theoretical vs measured cycles, FP16 on " + dev.name +
                        " (single block)");
  std::cout << "\n";
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig15_cycles", [] {
    kami::bench::panel<kami::fp16_t>(kami::sim::gh200());
    kami::bench::panel<kami::fp16_t>(kami::sim::rtx5090());
    std::cout << "Measured totals also include sync waits and barrier latency, which the\n"
                 "analytic model omits; measured computation exceeds theory by the\n"
                 "device's MMA issue-efficiency factor (GH200: 62%, per §5.6.2).\n";
  });
}
