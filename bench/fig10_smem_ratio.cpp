// Figure 10: impact of the register/shared-memory cooperation ratio (§4.7)
// on block-level FP16 GEMM (RTX 5090).
//
// For small matrices registers alone suffice and any spilling only adds
// shared-memory traffic; at order 128 the operands cannot fit and a
// moderate ratio is fastest; excessive spilling always degrades.
// Infeasible cells (register demand exceeds the hardware limit at that
// ratio) are annotated, matching the paper's figure annotations.
#include "bench_common.hpp"

namespace kami::bench {
namespace {

void run() {
  const auto& dev = sim::rtx5090();
  const std::vector<double> ratios{0.0, 0.25, 0.5, 0.75};

  TablePrinter table({"order", "ratio 0%", "ratio 25%", "ratio 50%", "ratio 75%",
                      "best ratio"});
  for (std::size_t n : {32u, 64u, 96u, 128u}) {
    std::vector<std::optional<double>> row;
    for (double ratio : ratios) {
      GemmOptions opt;
      opt.warps = 4;
      opt.smem_ratio = ratio;
      row.push_back(kami_tput<fp16_t>(Algo::OneD, dev, n, n, n, opt));
    }
    std::size_t best = 0;
    double best_v = -1.0;
    for (std::size_t i = 0; i < row.size(); ++i)
      if (row[i] && *row[i] > best_v) {
        best_v = *row[i];
        best = i;
      }
    std::vector<std::string> cells{std::to_string(n)};
    for (const auto& v : row) cells.push_back(v ? fmt_double(*v, 2) : "overflow");
    cells.push_back(fmt_double(ratios[best] * 100.0, 0) + "%");
    table.add_row(cells);
  }
  emit_table(table,
             "Fig 10: impact of shared-memory ratio, KAMI-1D FP16 on RTX 5090 [TFLOPS]");
  std::cout << "\n  'overflow' = register demand exceeds the 255-register/thread limit\n"
            << "  (paper: registers alone suffice for 32-64; order 128 peaks at a "
               "moderate ratio; excessive spilling degrades)\n";
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig10_smem_ratio",
                                 [] { kami::bench::run(); });
}
