// Parallel execution engine scaling: wall-clock of the three fan-out
// workloads (batched GEMM, autotune candidate sweep, chaos campaign) at
// 1/2/4/8 engine workers, with the determinism contract checked alongside
// every measurement — a worker count that changed a single bit would be a
// correctness bug, not a perf result.
//
// Numbers are honest for the machine that ran them: the `cpus` meta field
// records std::thread::hardware_concurrency(), and on a single-core host
// the parallel rows measure pure engine overhead (no speedup is physically
// available — see results/BENCH_parallel.json for the recorded run).
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/autotune.hpp"
#include "core/batched.hpp"
#include "core/profile_cache.hpp"
#include "serve/chaos.hpp"

namespace kami {
namespace {

constexpr int kReps = 5;
const int kWorkerCounts[] = {1, 2, 4, 8};

double min_seconds(const std::function<void()>& body) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    best = std::min(best, dt.count());
  }
  return best;
}

std::string fmt_ms(double seconds) { return fmt_double(seconds * 1e3, 2); }

template <Scalar T>
bool bits_equal(const Matrix<T>& a, const Matrix<T>& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         (a.size() == 0 ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

/// One measured workload: run(workers) executes it once; identical(workers)
/// reports whether its output bit-matches the serial run.
struct Workload {
  std::string name;
  std::function<void(int)> run;
  std::function<bool(int)> identical;
};

void measure(const Workload& w, TablePrinter& table) {
  double serial = 0.0;
  for (const int workers : kWorkerCounts) {
    const double best = min_seconds([&] { w.run(workers); });
    if (workers == 1) serial = best;
    const bool same = workers == 1 || w.identical(workers);
    table.add_row({w.name, std::to_string(workers), fmt_ms(best),
                   fmt_double(serial / best, 2) + "x", same ? "yes" : "NO"});
    bench::run_report().set_meta(
        w.name + ".workers" + std::to_string(workers) + ".ms", fmt_ms(best));
    if (!same)
      bench::run_report().set_meta(w.name + ".determinism", "VIOLATED at workers=" +
                                                                std::to_string(workers));
  }
}

void body() {
  const sim::DeviceSpec& dev = sim::gh200();
  bench::run_report().set_meta("cpus",
                               std::to_string(std::thread::hardware_concurrency()));
  bench::run_report().set_meta("reps", std::to_string(kReps));

  // Batched: 96 mixed-shape entries through the Full-mode fast path.
  std::vector<Matrix<fp16_t>> As, Bs;
  {
    Rng rng(7);
    const std::size_t shapes[][3] = {{32, 32, 32}, {64, 64, 64}, {48, 16, 64},
                                     {16, 48, 32}, {64, 32, 128}, {32, 64, 32}};
    for (std::size_t i = 0; i < 96; ++i) {
      const auto& s = shapes[i % std::size(shapes)];
      As.push_back(random_matrix<fp16_t>(s[0], s[2], rng));
      Bs.push_back(random_matrix<fp16_t>(s[2], s[1], rng));
    }
  }
  const auto run_batched = [&](int workers) {
    core::ProfileCache::global().clear();
    core::GemmOptions opt;
    opt.threads = workers;
    return core::kami_batched_gemm<fp16_t>(dev, As, Bs, core::Algo::OneD, opt);
  };
  const auto batched_serial = run_batched(1);

  // Autotune: the full default candidate grid at 128^3, cold cache per run.
  const auto run_autotune = [&](int workers) {
    core::ProfileCache::global().clear();
    return core::autotune_gemm<fp16_t>(dev, 128, 128, 128, bench::kBlocks,
                                       core::default_candidates(), workers);
  };
  const auto autotune_serial = run_autotune(1);

  // Chaos campaign: 120 replication-parallel points, fresh server each.
  const auto run_campaign = [&](int workers) {
    return serve::run_campaign(5, 120, workers);
  };
  const auto campaign_serial = run_campaign(1);

  const std::vector<Workload> workloads = {
      {"batched",
       [&](int w) { run_batched(w); },
       [&](int w) {
         const auto r = run_batched(w);
         if (r.seconds != batched_serial.seconds || r.tflops != batched_serial.tflops)
           return false;
         for (std::size_t i = 0; i < r.C.size(); ++i)
           if (!bits_equal(r.C[i], batched_serial.C[i])) return false;
         return true;
       }},
      {"autotune",
       [&](int w) { run_autotune(w); },
       [&](int w) {
         const auto r = run_autotune(w);
         return r.tflops == autotune_serial.tflops &&
                r.config.warps == autotune_serial.config.warps &&
                r.config.algo == autotune_serial.config.algo &&
                r.evaluated == autotune_serial.evaluated;
       }},
      {"campaign",
       [&](int w) { run_campaign(w); },
       [&](int w) {
         const auto r = run_campaign(w);
         return r.ran == campaign_serial.ran &&
                r.served_ok == campaign_serial.served_ok &&
                r.typed_errors == campaign_serial.typed_errors &&
                r.by_rung == campaign_serial.by_rung &&
                r.by_code == campaign_serial.by_code &&
                r.violations.size() == campaign_serial.violations.size();
       }}};

  TablePrinter table({"workload", "workers", "best ms", "speedup", "bit-identical"});
  for (const auto& w : workloads) measure(w, table);
  bench::emit_table(table, "engine scaling (min of " + std::to_string(kReps) +
                               " reps per cell)");
}

}  // namespace
}  // namespace kami

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "parallel_scaling", kami::body);
}
