// google-benchmark microbenchmarks of the simulator substrate itself:
// how fast the host can simulate KAMI kernels — useful when sizing sweeps
// (a full Fig 8 reproduction simulates hundreds of blocks).
#include <benchmark/benchmark.h>

#include "baselines/cublasdx_like.hpp"
#include "core/kami.hpp"

namespace kami {
namespace {

template <Scalar T>
void BM_Kami1dBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto A = random_matrix<T>(n, n, rng);
  const auto B = random_matrix<T>(n, n, rng);
  for (auto _ : state) {
    auto r = core::kami_1d_gemm(sim::gh200(), A, B);
    benchmark::DoNotOptimize(r.profile.latency);
  }
  state.counters["sim_cycles"] = benchmark::Counter(0.0);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Kami1dBlock<fp16_t>)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_Kami1dBlock<double>)->Arg(64);

void BM_Kami2dBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto A = random_matrix<fp16_t>(n, n, rng);
  const auto B = random_matrix<fp16_t>(n, n, rng);
  for (auto _ : state) {
    auto r = core::kami_2d_gemm(sim::gh200(), A, B);
    benchmark::DoNotOptimize(r.profile.latency);
  }
}
BENCHMARK(BM_Kami2dBlock)->Arg(64);

void BM_Kami3dBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto A = random_matrix<fp16_t>(n, n, rng);
  const auto B = random_matrix<fp16_t>(n, n, rng);
  for (auto _ : state) {
    auto r = core::kami_3d_gemm(sim::gh200(), A, B);
    benchmark::DoNotOptimize(r.profile.latency);
  }
}
BENCHMARK(BM_Kami3dBlock)->Arg(64);

void BM_CublasdxBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto A = random_matrix<fp16_t>(n, n, rng);
  const auto B = random_matrix<fp16_t>(n, n, rng);
  for (auto _ : state) {
    auto r = baselines::cublasdx_gemm(sim::gh200(), A, B);
    benchmark::DoNotOptimize(r.profile.latency);
  }
}
BENCHMARK(BM_CublasdxBlock)->Arg(64);

void BM_Fp16Conversion(benchmark::State& state) {
  Rng rng(1);
  std::vector<float> xs(4096);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-100.0, 100.0));
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (float x : xs) acc += fp16_t::encode(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_Fp16Conversion);

}  // namespace
}  // namespace kami

BENCHMARK_MAIN();
