// Microbenchmarks of the simulator substrate itself: how fast the host can
// simulate KAMI kernels — useful when sizing sweeps (a full Fig 8
// reproduction simulates hundreds of blocks).
//
// The default run is a wall-clock comparison harness for the execution-mode
// split and the profile cache:
//   * Full vs TimingOnly vs NumericsOnly per kernel (with bit-equivalence
//     checks alongside the timings);
//   * autotune: the pre-split path (one Full simulation per candidate on
//     random operands) vs the cached TimingOnly path, cold and warm;
//   * batched: the pre-split per-entry Full loop vs the fast path (one
//     cached TimingOnly profile per distinct shape + NumericsOnly values);
//   * ProfileCache cold miss vs warm hit.
// It prints tables and exports a kami.obs.run report via --json (the
// speedups also land in the report meta). --smoke shrinks repetitions and
// batch sizes for ctest. `--gbench [args...]` instead runs the
// google-benchmark kernel microbenchmarks.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/autotune.hpp"
#include "core/batched.hpp"
#include "core/numeric_path.hpp"
#include "core/profile_cache.hpp"
#include "model/cost_model.hpp"

namespace kami {
namespace {

/// Flipped by any failed bit/profile-equivalence check; the binary exits
/// nonzero so CI catches a Full-mode data-plane divergence even without the
/// baseline diff.
bool g_equivalence_ok = true;

// ---------------------------------------------------------------------------
// google-benchmark kernel microbenchmarks (--gbench)
// ---------------------------------------------------------------------------

template <Scalar T>
void BM_Kami1dBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto A = random_matrix<T>(n, n, rng);
  const auto B = random_matrix<T>(n, n, rng);
  for (auto _ : state) {
    auto r = core::kami_1d_gemm(sim::gh200(), A, B);
    benchmark::DoNotOptimize(r.profile.latency);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Kami1dBlock<fp16_t>)->Arg(16)->Arg(64)->Arg(128);
BENCHMARK(BM_Kami1dBlock<double>)->Arg(64);

/// One KAMI kernel at order 64 in each execution mode (Arg0 = algo index,
/// Arg1 = mode index) — the host-cost ratio the mode split buys.
void BM_KamiMode(benchmark::State& state) {
  const auto algo = static_cast<Algo>(state.range(0));
  const auto mode = static_cast<sim::ExecMode>(state.range(1));
  Rng rng(64);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  GemmOptions opt;
  opt.mode = mode;
  for (auto _ : state) {
    auto r = gemm(algo, sim::gh200(), A, B, opt);
    benchmark::DoNotOptimize(r.C.data());
  }
  state.SetLabel(std::string(algo_name(algo)) + "/" + sim::exec_mode_name(mode));
}
BENCHMARK(BM_KamiMode)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}});  // {1D,2D,3D} x {Full,Timing,Numerics}

void BM_Kami2dBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto A = random_matrix<fp16_t>(n, n, rng);
  const auto B = random_matrix<fp16_t>(n, n, rng);
  for (auto _ : state) {
    auto r = core::kami_2d_gemm(sim::gh200(), A, B);
    benchmark::DoNotOptimize(r.profile.latency);
  }
}
BENCHMARK(BM_Kami2dBlock)->Arg(64);

void BM_Kami3dBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto A = random_matrix<fp16_t>(n, n, rng);
  const auto B = random_matrix<fp16_t>(n, n, rng);
  for (auto _ : state) {
    auto r = core::kami_3d_gemm(sim::gh200(), A, B);
    benchmark::DoNotOptimize(r.profile.latency);
  }
}
BENCHMARK(BM_Kami3dBlock)->Arg(64);

void BM_CublasdxBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(n);
  const auto A = random_matrix<fp16_t>(n, n, rng);
  const auto B = random_matrix<fp16_t>(n, n, rng);
  for (auto _ : state) {
    auto r = baselines::cublasdx_gemm(sim::gh200(), A, B);
    benchmark::DoNotOptimize(r.profile.latency);
  }
}
BENCHMARK(BM_CublasdxBlock)->Arg(64);

void BM_Fp16Conversion(benchmark::State& state) {
  Rng rng(1);
  std::vector<float> xs(4096);
  for (auto& x : xs) x = static_cast<float>(rng.uniform(-100.0, 100.0));
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (float x : xs) acc += fp16_t::encode(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(xs.size()));
}
BENCHMARK(BM_Fp16Conversion);

// ---------------------------------------------------------------------------
// Comparison harness (the default run)
// ---------------------------------------------------------------------------

/// Best-of-`reps` wall seconds of fn().
template <typename F>
double best_seconds(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
    if (dt.count() < best) best = dt.count();
  }
  return best;
}

bool profiles_identical(const sim::KernelProfile& a, const sim::KernelProfile& b) {
  return a.latency == b.latency && a.tc_busy == b.tc_busy &&
         a.smem_busy == b.smem_busy && a.gmem_busy == b.gmem_busy &&
         a.vector_busy == b.vector_busy && a.useful_flops == b.useful_flops &&
         a.num_warps == b.num_warps;
}

template <Scalar T>
bool bits_identical(const Matrix<T>& a, const Matrix<T>& b) {
  return max_abs_diff(a, b) == 0.0;
}

std::string ms(double seconds) { return fmt_double(seconds * 1e3, 3); }
std::string ratio(double base, double fast) {
  return fast > 0.0 ? fmt_double(base / fast, 1) + "x" : "-";
}
/// Host-side arithmetic rate: useful GEMM flops per wall second.
std::string gflops(double flops, double seconds) {
  return seconds > 0.0 ? fmt_double(flops / seconds / 1e9, 2) : "-";
}

void record_speedup(const std::string& key, double base, double fast) {
  if (fast > 0.0) bench::run_report().set_meta(key, fmt_double(base / fast, 2));
}

/// Full vs TimingOnly vs NumericsOnly per kernel, with the equivalence
/// checks the fast paths rely on.
void mode_comparison(int reps) {
  TablePrinter table({"kernel", "full (ms)", "timing (ms)", "numerics (ms)",
                      "timing speedup", "numerics speedup", "numerics GFLOP/s",
                      "profile==full", "C==full"});
  double numerics_gflops_1d = 0.0;
  for (const Algo algo : {Algo::OneD, Algo::TwoD, Algo::ThreeD}) {
    Rng rng(64);
    const auto A = random_matrix<fp16_t>(64, 64, rng);
    const auto B = random_matrix<fp16_t>(64, 64, rng);
    GemmOptions full_opt, timing_opt, numerics_opt;
    timing_opt.mode = sim::ExecMode::TimingOnly;
    numerics_opt.mode = sim::ExecMode::NumericsOnly;
    const auto& dev = sim::gh200();

    const auto full = gemm(algo, dev, A, B, full_opt);
    const auto timing = gemm(algo, dev, A, B, timing_opt);
    const auto numer = gemm(algo, dev, A, B, numerics_opt);

    const double t_full = best_seconds(reps, [&] {
      benchmark::DoNotOptimize(gemm(algo, dev, A, B, full_opt).profile.latency);
    });
    const double t_timing = best_seconds(reps, [&] {
      benchmark::DoNotOptimize(gemm(algo, dev, A, B, timing_opt).profile.latency);
    });
    const double t_numer = best_seconds(reps, [&] {
      benchmark::DoNotOptimize(gemm(algo, dev, A, B, numerics_opt).C.data());
    });

    const double flops = model::gemm_flops(64, 64, 64);
    if (algo == Algo::OneD && t_numer > 0.0) numerics_gflops_1d = flops / t_numer / 1e9;
    const bool prof_eq = profiles_identical(timing.profile, full.profile);
    const bool bits_eq = bits_identical(numer.C, full.C);
    if (!prof_eq || !bits_eq) g_equivalence_ok = false;
    table.add_row({std::string(algo_name(algo)) + " fp16 64", ms(t_full), ms(t_timing),
                   ms(t_numer), ratio(t_full, t_timing), ratio(t_full, t_numer),
                   gflops(flops, t_numer), prof_eq ? "yes" : "NO",
                   bits_eq ? "yes" : "NO"});
  }
  bench::emit_table(table, "Execution modes, host cost per simulated block");
  bench::run_report().set_meta("numerics_gflops_1d_fp16_64",
                               fmt_double(numerics_gflops_1d, 2));
}

/// Full-mode host cost over the Fig 8 square sweep (GH200 FP16, all three
/// kernels): the data-plane throughput the SIMD fragment kernels and arena
/// transfers buy. Cold is the first simulation of the shape (planning and
/// arena growth included), warm the best of `reps` repeats. The equivalence
/// columns assert that Full stayed profile-identical to TimingOnly and
/// bit-identical to NumericsOnly; any "NO" fails the binary's exit code.
///
/// When `gate` is given, the stable subset (orders 16/32/64 — the --smoke
/// orders, so smoke and full runs produce the same gate table) also lands in
/// a standalone gate report: only machine-independent cells (simulated
/// cycles, equivalence flags) plus dimensionless host-cost ratios, so CI can
/// `kami_prof diff` it against the committed baseline with a wide tolerance.
void fig08_full_sweep(int reps, bool smoke, obs::RunReport* gate) {
  const auto& dev = sim::gh200();
  const std::vector<std::size_t> orders =
      smoke ? std::vector<std::size_t>{16, 32, 64}
            : std::vector<std::size_t>{16, 32, 64, 128, 192};
  TablePrinter table({"order", "kernel", "full cold (ms)", "full warm (ms)",
                      "timing (ms)", "full/timing", "profile==full", "C==full"});
  TablePrinter gate_table({"order", "kernel", "latency (cycles)", "profile==full",
                           "C==full", "full/timing"});
  double warm_total = 0.0;
  bool sweep_ok = true;
  for (const std::size_t n : orders) {
    for (const Algo algo : {Algo::OneD, Algo::TwoD, Algo::ThreeD}) {
      const bool in_gate = gate != nullptr && n <= 64;
      const std::string name(algo_name(algo));
      Rng rng(n);
      const auto A = random_matrix<fp16_t>(n, n, rng);
      const auto B = random_matrix<fp16_t>(n, n, rng);
      GemmOptions full_opt, timing_opt, numerics_opt;
      timing_opt.mode = sim::ExecMode::TimingOnly;
      numerics_opt.mode = sim::ExecMode::NumericsOnly;

      std::optional<GemmResult<fp16_t>> full;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        full.emplace(gemm(algo, dev, A, B, full_opt));
      } catch (const PreconditionError&) {
        // Infeasibility is deterministic, so "-" rows are stable gate cells.
        table.add_row({std::to_string(n), name, "-", "-", "-", "-", "-", "-"});
        if (in_gate)
          gate_table.add_row({std::to_string(n), name, "-", "-", "-", "-"});
        continue;
      }
      const std::chrono::duration<double> cold_dt =
          std::chrono::steady_clock::now() - t0;

      const auto timing = gemm(algo, dev, A, B, timing_opt);
      const auto numer = gemm(algo, dev, A, B, numerics_opt);
      const double t_warm = best_seconds(reps, [&] {
        benchmark::DoNotOptimize(gemm(algo, dev, A, B, full_opt).profile.latency);
      });
      const double t_timing = best_seconds(reps, [&] {
        benchmark::DoNotOptimize(gemm(algo, dev, A, B, timing_opt).profile.latency);
      });

      const bool prof_eq = profiles_identical(timing.profile, full->profile);
      const bool bits_eq = bits_identical(numer.C, full->C);
      if (!prof_eq || !bits_eq) {
        g_equivalence_ok = false;
        sweep_ok = false;
      }
      warm_total += t_warm;
      table.add_row({std::to_string(n), name, ms(cold_dt.count()), ms(t_warm),
                     ms(t_timing), ratio(t_warm, t_timing),
                     prof_eq ? "yes" : "NO", bits_eq ? "yes" : "NO"});
      if (in_gate)
        gate_table.add_row({std::to_string(n), name,
                            fmt_double(full->profile.latency, 1),
                            prof_eq ? "yes" : "NO", bits_eq ? "yes" : "NO",
                            t_timing > 0.0 ? fmt_double(t_warm / t_timing, 2) : "-"});
    }
  }
  bench::emit_table(table, "Fig 8 sweep, Full-mode host cost (GH200 fp16)");
  bench::run_report().set_meta("fig08_full_warm_ms_total",
                               fmt_double(warm_total * 1e3, 3));
  bench::run_report().set_meta("fig08_equivalence", sweep_ok ? "yes" : "NO");
  if (gate != nullptr) gate->add_table("Full-mode data plane gate", gate_table);
}

/// Pre-split autotune (per-candidate Full on random operands) vs the cached
/// TimingOnly path.
void autotune_comparison(int reps) {
  const auto& dev = sim::gh200();
  const std::size_t n = 64;

  // The pre-split path: every candidate runs a Full simulation, arithmetic
  // included, on random operands.
  const auto legacy = [&] {
    Rng rng(42);
    const auto A = random_matrix<fp16_t>(n, n, rng);
    const auto B = random_matrix<fp16_t>(n, n, rng);
    double best = 0.0;
    for (const auto& cand : core::default_candidates()) {
      GemmOptions opt;
      opt.warps = cand.warps;
      opt.smem_ratio = cand.smem_ratio;
      try {
        const auto r = gemm(cand.algo, dev, A, B, opt);
        const double t = sim::throughput_tflops(dev, r.profile, bench::kBlocks);
        if (t > best) best = t;
      } catch (const PreconditionError&) {
      }
    }
    return best;
  };

  const double legacy_tflops = legacy();
  const double t_legacy = best_seconds(reps, [&] { benchmark::DoNotOptimize(legacy()); });
  const double t_cold = best_seconds(reps, [&] {
    core::ProfileCache::global().clear();
    benchmark::DoNotOptimize(core::autotune_gemm<fp16_t>(dev, n, n, n).tflops);
  });
  const auto tuned = core::autotune_gemm<fp16_t>(dev, n, n, n);  // prime the cache
  const double t_warm = best_seconds(reps, [&] {
    benchmark::DoNotOptimize(core::autotune_gemm<fp16_t>(dev, n, n, n).tflops);
  });

  TablePrinter table({"path", "time (ms)", "speedup vs pre-split", "winner TFLOPS"});
  table.add_row({"pre-split (Full per candidate)", ms(t_legacy), "1.0x",
                 fmt_double(legacy_tflops, 2)});
  table.add_row({"cached TimingOnly, cold", ms(t_cold), ratio(t_legacy, t_cold),
                 fmt_double(tuned.tflops, 2)});
  table.add_row({"cached TimingOnly, warm", ms(t_warm), ratio(t_legacy, t_warm),
                 fmt_double(tuned.tflops, 2)});
  bench::emit_table(table, "Autotune (fp16 64x64x64, full candidate grid)");
  record_speedup("autotune_cold_speedup", t_legacy, t_cold);
  record_speedup("autotune_warm_speedup", t_legacy, t_warm);
  if (tuned.tflops != legacy_tflops)
    std::cout << "WARNING: cached winner " << tuned.tflops << " != pre-split winner "
              << legacy_tflops << "\n";
}

/// Pre-split batched execution (per-entry Full) vs the fast path.
void batched_comparison(int reps, std::size_t batch) {
  const auto& dev = sim::gh200();
  const std::size_t orders[] = {16, 32, 48};  // 3 distinct shapes in the batch
  std::vector<Matrix<fp16_t>> As, Bs;
  Rng rng(7);
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t o = orders[i % 3];
    As.push_back(random_matrix<fp16_t>(o, o, rng));
    Bs.push_back(random_matrix<fp16_t>(o, o, rng));
  }

  // The pre-split loop: one Full simulation per entry, I/O charged.
  const auto legacy = [&] {
    GemmOptions opt;
    opt.charge_global_io = true;
    std::vector<Matrix<fp16_t>> Cs;
    Cs.reserve(As.size());
    for (std::size_t i = 0; i < As.size(); ++i)
      Cs.push_back(gemm(Algo::OneD, dev, As[i], Bs[i], opt).C);
    return Cs;
  };

  const auto legacy_C = legacy();
  const auto fast = core::kami_batched_gemm<fp16_t>(dev, As, Bs);
  bool identical = fast.C.size() == legacy_C.size();
  for (std::size_t i = 0; identical && i < legacy_C.size(); ++i)
    identical = bits_identical(fast.C[i], legacy_C[i]);

  const double t_legacy =
      best_seconds(reps, [&] { benchmark::DoNotOptimize(legacy().size()); });
  const double t_cold = best_seconds(reps, [&] {
    core::ProfileCache::global().clear();
    benchmark::DoNotOptimize(core::kami_batched_gemm<fp16_t>(dev, As, Bs).C.size());
  });
  const double t_warm = best_seconds(reps, [&] {
    benchmark::DoNotOptimize(core::kami_batched_gemm<fp16_t>(dev, As, Bs).C.size());
  });

  double batch_flops = 0.0;
  for (std::size_t i = 0; i < As.size(); ++i)
    batch_flops += model::gemm_flops(As[i].rows(), Bs[i].cols(), As[i].cols());

  TablePrinter table({"path", "time (ms)", "speedup vs pre-split", "host GFLOP/s",
                      "C bit-identical"});
  table.add_row({"pre-split (Full per entry)", ms(t_legacy), "1.0x",
                 gflops(batch_flops, t_legacy), "-"});
  table.add_row({"fast path, cold cache", ms(t_cold), ratio(t_legacy, t_cold),
                 gflops(batch_flops, t_cold), identical ? "yes" : "NO"});
  table.add_row({"fast path, warm cache", ms(t_warm), ratio(t_legacy, t_warm),
                 gflops(batch_flops, t_warm), identical ? "yes" : "NO"});
  bench::emit_table(table, "Batched GEMM, batch=" + std::to_string(batch) +
                               " (fp16 orders 16/32/48)");
  record_speedup("batched_cold_speedup", t_legacy, t_cold);
  record_speedup("batched_warm_speedup", t_legacy, t_warm);
  if (t_warm > 0.0)
    bench::run_report().set_meta("batched_warm_host_gflops",
                                 fmt_double(batch_flops / t_warm / 1e9, 2));
}

/// Raw cache lookup cost: one TimingOnly simulation vs a hit.
void cache_comparison(int reps) {
  const auto& dev = sim::gh200();
  auto& cache = core::ProfileCache::global();
  const double t_cold = best_seconds(reps, [&] {
    cache.clear();
    benchmark::DoNotOptimize(
        core::timing_profile<fp16_t>(cache, Algo::OneD, dev, 64, 64, 64).profile.latency);
  });
  (void)core::timing_profile<fp16_t>(cache, Algo::OneD, dev, 64, 64, 64);
  const double t_warm = best_seconds(reps, [&] {
    benchmark::DoNotOptimize(
        core::timing_profile<fp16_t>(cache, Algo::OneD, dev, 64, 64, 64).profile.latency);
  });

  TablePrinter table({"lookup", "time (ms)", "speedup"});
  table.add_row({"cold (TimingOnly simulation + insert)", ms(t_cold), "1.0x"});
  table.add_row({"warm (LRU hit)", ms(t_warm), ratio(t_cold, t_warm)});
  bench::emit_table(table, "ProfileCache, 1D fp16 64x64x64");
}

void run_harness(bool smoke, const std::string& gate_path) {
  const int reps = smoke ? 1 : 5;
  const std::size_t batch = smoke ? 12 : 120;
  bench::run_report().set_meta("smoke", smoke ? "1" : "0");
  // Host configuration: absolute GFLOP/s numbers are meaningless without the
  // compiler and SIMD mode that produced them.
  bench::run_report().set_meta("compiler", __VERSION__);
  bench::run_report().set_meta("build_type", KAMI_BUILD_TYPE);
  bench::run_report().set_meta("simd_mode", core::numeric_simd_name());
  bench::run_report().set_meta(
      "simd_lanes_f32", std::to_string(core::numeric_simd_lanes<float>));
  bench::run_report().set_meta(
      "simd_lanes_f64", std::to_string(core::numeric_simd_lanes<double>));
  obs::RunReport gate_report("sim_microbench_gate");
  obs::RunReport* gate = gate_path.empty() ? nullptr : &gate_report;
  mode_comparison(reps);
  fig08_full_sweep(reps, smoke, gate);
  autotune_comparison(reps);
  batched_comparison(reps, batch);
  cache_comparison(reps);
  if (gate != nullptr) {
    // Meta is informational only — `kami_prof diff` compares tables, not
    // meta — so build-dependent values here cannot trip the CI gate.
    gate_report.set_meta("simd_mode", core::numeric_simd_name());
    gate_report.set_meta("smoke", smoke ? "1" : "0");
    std::ofstream os(gate_path);
    if (!os) {
      std::cerr << "sim_microbench: cannot open " << gate_path << " for writing\n";
      g_equivalence_ok = false;
    } else {
      gate_report.write_json(os);
    }
  }
}

}  // namespace
}  // namespace kami

int main(int argc, char** argv) {
  // `--gbench [args...]` hands the rest of the command line to
  // google-benchmark and runs the kernel microbenchmarks instead.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--gbench") {
      std::vector<char*> bargv{argv[0]};
      for (int j = i + 1; j < argc; ++j) bargv.push_back(argv[j]);
      int bargc = static_cast<int>(bargv.size());
      benchmark::Initialize(&bargc, bargv.data());
      if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data())) return 1;
      benchmark::RunSpecifiedBenchmarks();
      return 0;
    }
  }

  // `--smoke` and `--gate <path>` are ours; everything else goes through to
  // bench_main (which rejects unknown flags).
  bool smoke = false;
  std::string gate_path;
  std::vector<char*> fargv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke")
      smoke = true;
    else if (arg == "--gate" && i + 1 < argc)
      gate_path = argv[++i];
    else
      fargv.push_back(argv[i]);
  }
  const int rc = kami::bench::bench_main(static_cast<int>(fargv.size()), fargv.data(),
                                         "sim_microbench",
                                         [&] { kami::run_harness(smoke, gate_path); });
  if (rc != 0) return rc;
  if (!kami::g_equivalence_ok) {
    std::cerr << "sim_microbench: equivalence check failed (see NO cells above)\n";
    return 1;
  }
  return 0;
}
