// Figure 13: SpMM and SpGEMM in FP16 on GH200 with 50% random block
// sparsity (§5.1/§5.5), alongside the dense KAMI-1D GEMM for scale.
//
// Expected shape (§5.5): SpMM tracks dense GEMM closely (B and C dense,
// regular accesses); SpGEMM's irregular indexing and index-array
// communication reduce throughput.
#include "bench_common.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/spmm.hpp"
#include "sparse/spmm_2d.hpp"
#include "sparse/spmm_3d.hpp"

namespace kami::bench {
namespace {

void run() {
  const auto& dev = sim::gh200();
  TablePrinter table({"order", "dense KAMI-1D", "SpMM-1D", "SpMM-2D", "SpMM-3D",
                      "SpGEMM", "SpMM/dense", "SpGEMM/SpMM"});
  for (std::size_t n : {32u, 64u, 96u, 128u}) {
    Rng rng(n * 3 + 1);
    const auto Asp =
        sparse::BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16,
                                                  sparse::BlockOrder::RowMajor);
    const auto Bsp =
        sparse::BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16,
                                                  sparse::BlockOrder::RowMajor);
    const auto Bd = random_matrix<fp16_t>(n, n, rng);

    const auto Azm =
        sparse::BlockSparseMatrix<fp16_t>::random(n, n, 0.5, rng, 16,
                                                  sparse::BlockOrder::ZMorton);
    const auto dense = kami_tput<fp16_t>(Algo::OneD, dev, n, n, n);
    const auto spmm = sparse::spmm_1d(dev, Asp, Bd);
    const auto spmm2 = sparse::spmm_2d(dev, Azm, Bd);
    const auto spmm3 = sparse::spmm_3d(dev, Azm, Bd);
    const auto spgemm = sparse::spgemm_1d(dev, Asp, Bsp);

    // Effective TFLOPS over useful (nonzero) flops, as sparse kernels report.
    const double t_spmm = tput(dev, spmm.profile);
    // SpGEMM adds its symbolic kernel's cycles to every block's interval.
    auto prof = spgemm.profile;
    prof.latency += spgemm.symbolic.cycles;
    const double t_spgemm = tput(dev, prof);

    const double t_spmm2 = tput(dev, spmm2.profile);
    const double t_spmm3 = tput(dev, spmm3.profile);
    table.add_row({std::to_string(n), cell(dense), fmt_double(t_spmm, 2),
                   fmt_double(t_spmm2, 2), fmt_double(t_spmm3, 2),
                   fmt_double(t_spgemm, 2),
                   dense ? fmt_double(t_spmm / *dense, 2) : "-",
                   fmt_double(t_spgemm / t_spmm, 2)});
  }
  emit_table(table,
             "Fig 13: SpMM and SpGEMM, FP16 on GH200, 50% block sparsity [TFLOPS on "
             "useful flops]");
  std::cout << "\n  SpMM tracks dense GEMM (dense B/C, regular accesses); SpGEMM's\n"
               "  sparse indexing and index-array transfers reduce throughput (§5.5)\n";
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig13_sparse",
                                 [] { kami::bench::run(); });
}
