// Figure 14 + §5.6.1: register allocation, theoretical vs measured.
//
// C fixed at 64x32 FP16; A and B grow with k. "Theoretical" is the §4.7
// counting model (operands at storage width, accumulator at FP32, staging
// buffers included); "measured" is the simulator's register-file high-water
// mark, which is lower because the implementation reuses receive buffers
// across stages — the same direction as the paper's compiler-reuse gap
// (measured 65-77% of theory).
#include "bench_common.hpp"
#include "model/registers.hpp"

namespace kami::bench {
namespace {

template <Scalar T>
std::optional<double> measured_regs(Algo algo, int warps, std::size_t m, std::size_t n,
                                    std::size_t k) {
  GemmOptions opt;
  opt.warps = warps;
  opt.smem_ratio = 0.0;
  Rng rng(k * 3 + 1);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  try {
    const auto r = kami::gemm(algo, sim::gh200(), A, B, opt);
    return static_cast<double>(r.profile.reg_bytes_per_warp) / 4.0 / 32.0;
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

void run() {
  TablePrinter table({"k", "1D theory", "1D measured", "2D theory", "2D measured",
                      "3D theory", "3D measured"});
  std::vector<double> ratios1, ratios2, ratios3;
  for (std::size_t k : {16u, 32u, 64u, 128u, 256u}) {
    const double t1 =
        model::register_usage(model::Algo::OneD, Precision::FP16, 64, 32, k, 4)
            .regs_per_thread();
    const double t2 =
        model::register_usage(model::Algo::TwoD, Precision::FP16, 64, 32, k, 4)
            .regs_per_thread();
    const double t3 =
        model::register_usage(model::Algo::ThreeD, Precision::FP16, 64, 32, k, 8)
            .regs_per_thread();
    const auto m1 = measured_regs<fp16_t>(Algo::OneD, 4, 64, 32, k);
    const auto m2 = measured_regs<fp16_t>(Algo::TwoD, 4, 64, 32, k);
    const auto m3 = measured_regs<fp16_t>(Algo::ThreeD, 8, 64, 32, k);
    if (m1) ratios1.push_back(*m1 / t1);
    if (m2) ratios2.push_back(*m2 / t2);
    if (m3) ratios3.push_back(*m3 / t3);
    table.add_row({std::to_string(k), fmt_double(t1, 1), cell(m1, 1), fmt_double(t2, 1),
                   cell(m2, 1), fmt_double(t3, 1), cell(m3, 1)});
  }
  emit_table(table,
             "Fig 14: register usage (regs/thread), C = 64x32 FP16, A/B grow with k");
  auto pct = [](const std::vector<double>& v) {
    return v.empty() ? std::string("n/a") : fmt_double(100.0 * mean(v), 1) + "%";
  };
  std::cout << "  measured/theory: 1D " << pct(ratios1) << ", 2D " << pct(ratios2)
            << ", 3D " << pct(ratios3) << "  (paper: 76.9% / 73.1% / 65.7%)\n\n";

  // §5.6.1's on-chip comparison at 64x64 FP16.
  Rng rng(7);
  const auto A = random_matrix<fp16_t>(64, 64, rng);
  const auto B = random_matrix<fp16_t>(64, 64, rng);
  GemmOptions opt;
  opt.smem_ratio = 0.0;
  TablePrinter chip({"kernel", "regs/thread", "smem KiB"});
  for (auto algo : {Algo::OneD, Algo::TwoD, Algo::ThreeD}) {
    opt.warps = algo == Algo::ThreeD ? 8 : 4;
    const auto r = kami::gemm(algo, sim::gh200(), A, B, opt);
    chip.add_row({algo_name(algo),
                  fmt_double(static_cast<double>(r.profile.reg_bytes_per_warp) / 128.0, 0),
                  fmt_double(static_cast<double>(r.profile.smem_bytes) / 1024.0, 1)});
  }
  const auto dx = baselines::cublasdx_gemm(sim::gh200(), A, B);
  chip.add_row({"cuBLASDx-like",
                fmt_double(static_cast<double>(dx.profile.reg_bytes_per_warp) / 128.0, 0),
                fmt_double(static_cast<double>(dx.profile.smem_bytes) / 1024.0, 1)});
  const auto ct = baselines::cutlass_gemm(sim::gh200(), A, B);
  chip.add_row({"CUTLASS-like",
                fmt_double(static_cast<double>(ct.profile.reg_bytes_per_warp) / 128.0, 0),
                fmt_double(static_cast<double>(ct.profile.smem_bytes) / 1024.0, 1)});
  emit_table(chip, "On-chip memory at 64x64 FP16 (§5.6.1; paper: KAMI 62/80/55 regs "
                   "+ 2-8 KB smem, cuBLASDx 40 regs + 27 KB, CUTLASS 96 regs + 65 KB)");
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig14_registers",
                                 [] { kami::bench::run(); });
}
