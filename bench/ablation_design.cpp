// Ablations over the simulator's calibrated design constants — each sweep
// isolates one modeling mechanism DESIGN.md documents and shows the paper
// observation it is responsible for.
//
//  A. Shared-memory per-transaction overhead -> the 1D > 2D ordering.
//     Raw CA volume alone makes 1D and 2D tie at p = 4 square shapes; the
//     instruction overhead of moving the same bytes in more, smaller
//     transfers (§5.2.1's "45% more nops") is what separates them.
//  B. Slice width -> §4.7's choice of 16 ("align with the MMA unit
//     granularity"): narrower slices pad MMA instructions, wider slices
//     inflate the receive buffers.
//  C. MMA issue efficiency -> the Fig 15 theory/measured computation gap.
//  D. Barrier latency -> stage-count sensitivity (1D has more stages).
#include "bench_common.hpp"

namespace kami::bench {
namespace {

void ablate_transaction_overhead() {
  TablePrinter t({"overhead (cyc/transfer)", "KAMI-1D", "KAMI-2D", "1D/2D"});
  for (double ov : {0.0, 6.0, 12.0, 24.0}) {
    auto dev = sim::gh200();
    dev.smem_transaction_overhead_cycles = ov;
    const auto r1 = kami_tput<fp16_t>(Algo::OneD, dev, 64, 64, 64);
    const auto r2 = kami_tput<fp16_t>(Algo::TwoD, dev, 64, 64, 64);
    t.add_row({fmt_double(ov, 0), cell(r1), cell(r2),
               (r1 && r2) ? fmt_double(*r1 / *r2, 2) : "-"});
  }
  emit_table(t, "Ablation A: smem transaction overhead, 64^3 FP16 GH200 [TFLOPS]");
  std::cout << "  the overhead term is what makes 1D beat 2D (their CA byte "
               "volumes tie at p=4)\n\n";
}

void ablate_slice_width() {
  TablePrinter t({"slice width", "square 64^3", "low-rank 128x128x16"});
  for (std::size_t sw : {4u, 8u, 16u, 32u}) {
    GemmOptions opt;
    opt.slice_pref = sw;
    opt.warps = 4;
    opt.smem_ratio = 0.0;
    const auto sq = kami_tput<fp16_t>(Algo::OneD, sim::gh200(), 64, 64, 64, opt);
    const auto lr = kami_tput<fp16_t>(Algo::OneD, sim::gh200(), 128, 128, 16, opt);
    t.add_row({std::to_string(sw), cell(sq), cell(lr)});
  }
  emit_table(t, "Ablation B: k-slice width (16 = MMA granularity) [TFLOPS]");
  std::cout << "  slices below the MMA k-shape pad every instruction; §4.7's "
               "choice of 16 is the knee\n\n";
}

void ablate_mma_efficiency() {
  TablePrinter t({"mma efficiency", "single-block cycles", "compute cycles",
                  "device TFLOPS"});
  for (double eff : {0.62, 0.8, 1.0}) {
    auto dev = sim::gh200();
    dev.mma_efficiency = eff;
    Rng rng(9);
    const auto A = random_matrix<fp16_t>(128, 128, rng);
    const auto B = random_matrix<fp16_t>(128, 128, rng);
    GemmOptions opt;
    opt.warps = 4;
    const auto r = kami::gemm(Algo::OneD, dev, A, B, opt);
    t.add_row({fmt_double(eff, 2), fmt_double(r.profile.latency, 0),
               fmt_double(r.profile.mean_breakdown.compute, 0),
               fmt_double(tput(dev, r.profile), 1)});
  }
  emit_table(t, "Ablation C: MMA issue efficiency (Hopper measures 62%, §5.6.2)");
  std::cout << "  warp-visible compute stretches by 1/eff; steady-state "
               "throughput is shielded when other resources bound it\n\n";
}

void ablate_sync_latency() {
  TablePrinter t({"sync latency (cyc)", "KAMI-1D 16^3", "KAMI-1D 128^3"});
  for (double sync : {0.0, 15.0, 30.0, 60.0}) {
    auto dev = sim::gh200();
    dev.sync_latency_cycles = sync;
    const auto small = kami_tput<fp16_t>(Algo::OneD, dev, 16, 16, 16);
    const auto large = kami_tput<fp16_t>(Algo::OneD, dev, 128, 128, 128);
    t.add_row({fmt_double(sync, 0), cell(small), cell(large)});
  }
  emit_table(t, "Ablation D: barrier latency [TFLOPS]");
  std::cout << "  tiny problems are barrier-bound (3 syncs per broadcast "
               "stage); large ones amortize\n";
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "ablation_design", [] {
    kami::bench::ablate_transaction_overhead();
    kami::bench::ablate_slice_width();
    kami::bench::ablate_mma_efficiency();
    kami::bench::ablate_sync_latency();
  });
}
