// Shared helpers for the experiment harnesses. Every bench binary
// regenerates one table or figure from the paper's evaluation section:
// it prints the same rows/series the paper reports plus the derived
// average/peak speedups quoted in the text.
#pragma once

#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/cublasdx_like.hpp"
#include "baselines/cutlass_like.hpp"
#include "baselines/syclbench_like.hpp"
#include "core/kami.hpp"
#include "sim/throughput.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace kami::bench {

/// The paper's block-level launch width (§5.1): "16,384 blocks launched
/// simultaneously per run".
inline constexpr std::size_t kBlocks = 16384;

/// Device-level TFLOPS of a block kernel under the paper's launch setup.
inline double tput(const sim::DeviceSpec& dev, const sim::KernelProfile& prof) {
  return sim::throughput_tflops(dev, prof, kBlocks);
}

/// One measured series entry; nullopt = configuration infeasible.
using Series = std::vector<std::optional<double>>;

/// "avg (up to max)" speedup text of series a over series b.
inline std::string speedup_summary(const Series& kami, const Series& base) {
  std::vector<double> ratios;
  for (std::size_t i = 0; i < kami.size() && i < base.size(); ++i)
    if (kami[i] && base[i] && *base[i] > 0.0) ratios.push_back(*kami[i] / *base[i]);
  if (ratios.empty()) return "n/a";
  return fmt_double(mean(ratios), 2) + "x avg (up to " + fmt_double(max_of(ratios), 2) +
         "x)";
}

inline std::string cell(const std::optional<double>& v, int precision = 2) {
  return v ? fmt_double(*v, precision) : "-";
}

/// Run one KAMI variant at block level, nullopt when the planner reports
/// the configuration infeasible (e.g. 3D FP64 at order 128).
template <Scalar T>
std::optional<double> kami_tput(Algo algo, const sim::DeviceSpec& dev, std::size_t m,
                                std::size_t n, std::size_t k,
                                const GemmOptions& opt = {}) {
  Rng rng(m * 92821 + n * 31 + k + static_cast<std::size_t>(algo));
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  try {
    const auto r = kami::gemm(algo, dev, A, B, opt);
    return tput(dev, r.profile);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

template <Scalar T>
std::optional<double> cublasdx_tput(const sim::DeviceSpec& dev, std::size_t m,
                                    std::size_t n, std::size_t k) {
  Rng rng(m * 3 + n * 5 + k * 7);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  try {
    const auto r = baselines::cublasdx_gemm(dev, A, B);
    if (!r.feasible) return std::nullopt;
    return tput(dev, r.profile);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

template <Scalar T>
std::optional<double> cutlass_tput(const sim::DeviceSpec& dev, std::size_t m,
                                   std::size_t n, std::size_t k) {
  Rng rng(m * 11 + n * 13 + k * 17);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  try {
    // CUTLASS's collective mainloop streams A/B from global pointers every
    // iteration — it has no data-resident mode — so its block-level profile
    // includes (pipelined) global traffic.
    const auto r = baselines::cutlass_gemm(dev, A, B, /*charge_global_io=*/true);
    if (!r.feasible) return std::nullopt;
    return tput(dev, r.profile);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

template <Scalar T>
std::optional<double> syclbench_tput(const sim::DeviceSpec& dev, std::size_t n) {
  Rng rng(n * 19);
  const auto A = random_matrix<T>(n, n, rng);
  const auto B = random_matrix<T>(n, n, rng);
  try {
    const auto r = baselines::syclbench_gemm(dev, A, B);
    if (!r.feasible) return std::nullopt;
    return tput(dev, r.profile);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

}  // namespace kami::bench
