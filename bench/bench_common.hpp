// Shared helpers for the experiment harnesses. Every bench binary
// regenerates one table or figure from the paper's evaluation section:
// it prints the same rows/series the paper reports plus the derived
// average/peak speedups quoted in the text.
#pragma once

#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baselines/cublasdx_like.hpp"
#include "baselines/cutlass_like.hpp"
#include "baselines/syclbench_like.hpp"
#include "core/kami.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "sim/throughput.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace kami::bench {

/// The paper's block-level launch width (§5.1): "16,384 blocks launched
/// simultaneously per run".
inline constexpr std::size_t kBlocks = 16384;

/// Device-level TFLOPS of a block kernel under the paper's launch setup.
inline double tput(const sim::DeviceSpec& dev, const sim::KernelProfile& prof) {
  return sim::throughput_tflops(dev, prof, kBlocks);
}

/// One measured series entry; nullopt = configuration infeasible.
using Series = std::vector<std::optional<double>>;

/// "avg (up to max)" speedup text of series a over series b.
inline std::string speedup_summary(const Series& kami, const Series& base) {
  std::vector<double> ratios;
  for (std::size_t i = 0; i < kami.size() && i < base.size(); ++i)
    if (kami[i] && base[i] && *base[i] > 0.0) ratios.push_back(*kami[i] / *base[i]);
  if (ratios.empty()) return "n/a";
  return fmt_double(mean(ratios), 2) + "x avg (up to " + fmt_double(max_of(ratios), 2) +
         "x)";
}

inline std::string cell(const std::optional<double>& v, int precision = 2) {
  return v ? fmt_double(*v, precision) : "-";
}

/// The run report this binary accumulates. bench_main() names it after the
/// binary and exports it when --json/--csv is given.
inline obs::RunReport& run_report() {
  static obs::RunReport report("bench");
  return report;
}

/// Print a table to stdout AND capture it verbatim into the run report, so
/// the exported JSON reproduces the console output cell for cell.
inline void emit_table(const TablePrinter& table, const std::string& title) {
  table.print(std::cout, title);
  run_report().add_table(title, table);
}

/// Shared entry point for every bench binary: parses `--json <path>` /
/// `--csv <path>`, runs the experiment body (which prints via emit_table),
/// then snapshots the global metric registry and writes the report.
inline int bench_main(int argc, char** argv, const std::string& name,
                      const std::function<void()>& body) {
  std::string json_path, csv_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--csv" && i + 1 < argc) {
      csv_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--json <path>] [--csv <path>]\n";
      return 2;
    }
  }

  auto& report = run_report();
  report.set_name(name);
  report.set_meta("blocks", std::to_string(kBlocks));
  body();
  report.set_metrics(obs::MetricRegistry::global());

  const auto write_to = [&](const std::string& path, auto&& writer) {
    std::ofstream os(path);
    if (!os) {
      std::cerr << name << ": cannot open " << path << " for writing\n";
      return false;
    }
    writer(os);
    return true;
  };
  if (!json_path.empty() &&
      !write_to(json_path, [&](std::ostream& os) { report.write_json(os); }))
    return 1;
  if (!csv_path.empty() &&
      !write_to(csv_path, [&](std::ostream& os) { report.write_csv(os); }))
    return 1;
  return 0;
}

/// Run one KAMI variant at block level, nullopt when the planner reports
/// the configuration infeasible (e.g. 3D FP64 at order 128).
template <Scalar T>
std::optional<double> kami_tput(Algo algo, const sim::DeviceSpec& dev, std::size_t m,
                                std::size_t n, std::size_t k,
                                const GemmOptions& opt = {}) {
  Rng rng(m * 92821 + n * 31 + k + static_cast<std::size_t>(algo));
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  try {
    const auto r = kami::gemm(algo, dev, A, B, opt);
    return tput(dev, r.profile);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

template <Scalar T>
std::optional<double> cublasdx_tput(const sim::DeviceSpec& dev, std::size_t m,
                                    std::size_t n, std::size_t k) {
  Rng rng(m * 3 + n * 5 + k * 7);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  try {
    const auto r = baselines::cublasdx_gemm(dev, A, B);
    if (!r.feasible) return std::nullopt;
    return tput(dev, r.profile);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

template <Scalar T>
std::optional<double> cutlass_tput(const sim::DeviceSpec& dev, std::size_t m,
                                   std::size_t n, std::size_t k) {
  Rng rng(m * 11 + n * 13 + k * 17);
  const auto A = random_matrix<T>(m, k, rng);
  const auto B = random_matrix<T>(k, n, rng);
  try {
    // CUTLASS's collective mainloop streams A/B from global pointers every
    // iteration — it has no data-resident mode — so its block-level profile
    // includes (pipelined) global traffic.
    const auto r = baselines::cutlass_gemm(dev, A, B, /*charge_global_io=*/true);
    if (!r.feasible) return std::nullopt;
    return tput(dev, r.profile);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

template <Scalar T>
std::optional<double> syclbench_tput(const sim::DeviceSpec& dev, std::size_t n) {
  Rng rng(n * 19);
  const auto A = random_matrix<T>(n, n, rng);
  const auto B = random_matrix<T>(n, n, rng);
  try {
    const auto r = baselines::syclbench_gemm(dev, A, B);
    if (!r.feasible) return std::nullopt;
    return tput(dev, r.profile);
  } catch (const PreconditionError&) {
    return std::nullopt;
  }
}

}  // namespace kami::bench
