// BENCH_model: the calibrated analytic planner against ground truth.
//
// Three questions, one table each:
//   1. Calibration — what residual scale/band does each (algo) bucket fit
//      against the simulator on the calibration grid?
//   2. Accuracy — on *holdout* shapes (never calibrated on), how far is the
//      corrected closed form from the simulated latency, and does it stay
//      inside the promised band?
//   3. Speed — how many times faster is one estimate_plan() answer than the
//      TimingOnly simulation it replaces on the serving hot path?
//
// `model_planner --json results/BENCH_model.json` produces the checked-in
// report; the ctest fixture runs the same export and validates it with
// kami_prof.
#include <chrono>
#include <cmath>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/analytic_planner.hpp"
#include "core/autotune.hpp"
#include "core/profile_cache.hpp"
#include "model/predictor.hpp"

namespace {

using namespace kami;
using bench::emit_table;
using bench::kBlocks;
using bench::run_report;

// The holdouts sit *between* calibration points: the band promises to hold
// for interpolation, not extrapolation (model/predictor.hpp, band_pad).
constexpr std::size_t kCalibration[] = {32, 48, 64, 96, 128};
constexpr std::size_t kHoldout[] = {80, 112};

struct AlgoAccuracy {
  std::size_t holdouts = 0;
  double mean_err_pct = 0.0;
  double max_err_pct = 0.0;
  bool within_band = true;
};

double now_ns() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void body() {
  const sim::DeviceSpec& dev = sim::gh200();
  constexpr Precision prec = Precision::FP16;
  core::ProfileCache cache(256);
  model::Predictor predictor;

  // -- calibrate every algorithm's bucket on the grid.
  for (const core::Algo algo : {core::Algo::OneD, core::Algo::TwoD, core::Algo::ThreeD})
    for (const std::size_t s : kCalibration) {
      try {
        (void)core::timing_profile<fp16_t>(cache, algo, dev, s, s, s);
      } catch (const PreconditionError&) {
        // infeasible grid point (e.g. register overflow); the rest calibrate
      }
    }
  const std::size_t fed = core::calibrate_from_cache(predictor, cache);

  TablePrinter calib({"algo", "p", "samples", "scale", "band %", "confident"});
  for (const auto& b : predictor.bucket_stats())
    calib.add_row({algo_name(b.algo), std::to_string(b.p),
                   std::to_string(b.samples), fmt_double(b.scale, 4),
                   fmt_double(100.0 * b.rel_band, 2), b.confident ? "yes" : "no"});
  emit_table(calib, "calibration (GH200, FP16, " + std::to_string(fed) +
                        " observations)");

  // -- holdout accuracy per algorithm: corrected formula vs fresh simulation.
  TablePrinter acc({"algo", "shape", "predicted cyc", "simulated cyc", "err %",
                    "band %", "in band"});
  double worst_err_pct = 0.0;
  bool all_within_band = true;
  for (const core::Algo algo :
       {core::Algo::OneD, core::Algo::TwoD, core::Algo::ThreeD}) {
    AlgoAccuracy a;
    for (const std::size_t s : kHoldout) {
      core::PlanEstimate est;
      double actual = 0.0;
      try {
        est = core::estimate_plan(cache, predictor, algo, dev, prec, s, s, s, {});
        core::ProfileCache fresh(8);
        actual =
            core::timing_profile<fp16_t>(fresh, algo, dev, s, s, s).profile.latency;
      } catch (const PreconditionError&) {
        acc.add_row({algo_name(algo), std::to_string(s), "-", "-", "-", "-",
                     "infeasible"});
        continue;
      }
      const double err = std::abs(actual - est.cycles) / actual;
      const bool in_band = err <= est.prediction.rel_band;
      a.holdouts += 1;
      a.mean_err_pct += 100.0 * err;
      a.max_err_pct = std::max(a.max_err_pct, 100.0 * err);
      a.within_band = a.within_band && in_band;
      acc.add_row({algo_name(algo), std::to_string(s), fmt_double(est.cycles, 1),
                   fmt_double(actual, 1), fmt_double(100.0 * err, 2),
                   fmt_double(100.0 * est.prediction.rel_band, 2),
                   in_band ? "yes" : "NO"});
    }
    worst_err_pct = std::max(worst_err_pct, a.max_err_pct);
    all_within_band = all_within_band && a.within_band;
    run_report().set_meta(std::string("err_max_pct_") + algo_name(algo),
                          fmt_double(a.max_err_pct, 2));
    run_report().set_meta(
        std::string("err_mean_pct_") + algo_name(algo),
        fmt_double(a.mean_err_pct / static_cast<double>(a.holdouts), 2));
  }
  emit_table(acc, "holdout prediction error");

  // -- planning time: a warm analytic answer vs the TimingOnly simulation it
  // replaces. The simulation is timed cold (fresh cache each rep) because
  // that is exactly the case the fast path removes from the serving path.
  constexpr int kAnalyticReps = 2000;
  constexpr int kSimReps = 5;
  const double t0 = now_ns();
  for (int i = 0; i < kAnalyticReps; ++i)
    (void)core::estimate_plan(cache, predictor, core::Algo::OneD, dev, prec, 112, 112,
                              112, {});
  const double analytic_ns = (now_ns() - t0) / kAnalyticReps;
  double sim_ns = 0.0;
  for (int i = 0; i < kSimReps; ++i) {
    core::ProfileCache fresh(8);
    const double s0 = now_ns();
    (void)core::timing_profile<fp16_t>(fresh, core::Algo::OneD, dev, 112, 112, 112);
    sim_ns += now_ns() - s0;
  }
  sim_ns /= kSimReps;
  const double speedup = sim_ns / std::max(analytic_ns, 1.0);

  TablePrinter timing({"path", "ns / decision", "speedup"});
  timing.add_row({"TimingOnly simulation (cold)", fmt_double(sim_ns, 0), "1.00"});
  timing.add_row({"estimate_plan (analytic, warm)", fmt_double(analytic_ns, 0),
                  fmt_double(speedup, 2)});
  emit_table(timing, "planning time, KAMI-1D 112^3 (GH200, FP16)");

  // -- autotune pruning: what the prescreen saves on a warm predictor.
  core::ProfileCache::global().clear();
  model::Predictor::global().reset();
  for (const std::size_t s : kCalibration)
    (void)core::autotune_gemm<fp16_t>(dev, s, s, s, kBlocks);
  core::ProfileCache::global().clear();  // predictions, not cache hits
  core::TunePolicy aggressive;
  aggressive.top_k = 2;
  const core::TuneResult warm = core::autotune_gemm<fp16_t>(
      dev, 112, 112, 112, kBlocks, core::default_candidates(), 0, aggressive);
  TablePrinter tune({"autotune", "evaluated", "pruned", "winner tflops"});
  tune.add_row({"warm predictor, 112^3, top_k=2", std::to_string(warm.evaluated),
                std::to_string(warm.pruned), fmt_double(warm.tflops, 2)});
  emit_table(tune, "autotune prescreen");

  run_report().set_meta("prediction_err_max_pct", fmt_double(worst_err_pct, 2));
  run_report().set_meta("holdouts_within_band", all_within_band ? "yes" : "NO");
  run_report().set_meta("planning_ns_analytic", fmt_double(analytic_ns, 0));
  run_report().set_meta("planning_ns_simulated", fmt_double(sim_ns, 0));
  run_report().set_meta("planning_speedup", fmt_double(speedup, 2));
  run_report().set_meta("autotune_pruned_warm", std::to_string(warm.pruned));
  std::cout << "analytic planning is " << fmt_double(speedup, 1)
            << "x faster than simulation; worst holdout error "
            << fmt_double(worst_err_pct, 2) << "% (within band: "
            << (all_within_band ? "yes" : "NO") << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "model_planner", body);
}
