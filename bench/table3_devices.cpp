// Tables 3 and 4: the evaluation devices and their programming interfaces.
#include "bench_common.hpp"

namespace kami::bench {
namespace {

void run() {
  const std::vector<const sim::DeviceSpec*> devs{&sim::gh200(), &sim::rtx5090(),
                                                 &sim::amd7900xtx(),
                                                 &sim::intel_max1100()};

  TablePrinter t3({"Specification", "GH200", "RTX 5090", "7900 XTX", "Max 1100"});
  auto row = [&](const std::string& name, auto&& get) {
    std::vector<std::string> cells{name};
    for (const auto* d : devs) cells.push_back(get(*d));
    t3.add_row(cells);
  };
  row("Boost clock (MHz)", [](const sim::DeviceSpec& d) {
    return fmt_double(d.boost_clock_ghz * 1000.0, 0);
  });
  row("#Banks x bank width (Bytes)", [](const sim::DeviceSpec& d) {
    return std::to_string(d.smem_banks) + "x" + std::to_string(d.bank_width_bytes);
  });
  row("#SMs x #tensor cores/SM", [](const sim::DeviceSpec& d) {
    return std::to_string(d.num_sms) + "x" + std::to_string(d.tensor_cores_per_sm);
  });
  row("Peak FP16 tensor (TFLOPS)", [](const sim::DeviceSpec& d) {
    return fmt_double(d.peak_fp16_tflops, 0);
  });
  row("Peak FP64 tensor (TFLOPS)", [](const sim::DeviceSpec& d) {
    return d.peak_fp64_tflops > 0 ? fmt_double(d.peak_fp64_tflops, 0) : std::string("N/A");
  });
  emit_table(t3, "Table 3: Four GPUs from NVIDIA, AMD and Intel");
  std::cout << "\n";

  TablePrinter t4({"GPU Vendor", "NVIDIA", "AMD", "Intel"});
  t4.add_row({"Programming API", "CUDA", "HIP", "SYCL"});
  t4.add_row({"Local storage", "Register", "fragment", "joint_matrix"});
  t4.add_row({"Communication space", "Shared memory", "Shared memory", "Local memory"});
  t4.add_row({"Tensor core func.", "mma", "mma_sync", "joint_matrix_mad"});
  auto shape_str = [](const sim::MmaShape& s) {
    return "m" + std::to_string(s.m) + "n" + std::to_string(s.n) + "k" +
           std::to_string(s.k);
  };
  t4.add_row({"Instruction shape (FP16)", shape_str(sim::gh200().mma_shape(Precision::FP16)),
              shape_str(sim::amd7900xtx().mma_shape(Precision::FP16)),
              shape_str(sim::intel_max1100().mma_shape(Precision::FP16))});
  t4.add_row({"Instruction shape (FP64)", shape_str(sim::gh200().mma_shape(Precision::FP64)),
              "N/A", "N/A"});
  emit_table(t4, "Table 4: Programming API supported by KAMI");

  std::cout << "\nDerived simulator constants:\n";
  TablePrinter derived({"Device", "O_tc FP16 (flops/cyc/TC)", "B_sm (B/cyc)",
                        "L_sm (cyc)", "regs/warp (KiB)", "smem/block (KiB)"});
  for (const auto* d : devs) {
    derived.add_row({d->name, fmt_double(d->ops_per_cycle_per_tc(Precision::FP16), 1),
                     fmt_double(d->smem_bytes_per_cycle(), 0),
                     fmt_double(d->smem_latency_cycles, 0),
                     fmt_double(static_cast<double>(d->reg_bytes_per_warp()) / 1024.0, 1),
                     fmt_double(static_cast<double>(d->smem_bytes_per_block) / 1024.0, 0)});
  }
  emit_table(derived, "Simulator hardware constants");
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "table3_devices",
                                 [] { kami::bench::run(); });
}
