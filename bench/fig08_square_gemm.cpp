// Figure 8: block-level square GEMM across GPU architectures.
//
// Reproduces every panel of Fig 8 and the §5.2.1 speedup summary:
//   (a) GH200 FP64        KAMI-1D/2D/3D vs cuBLASDx vs CUTLASS
//   (b) GH200 FP16        (+ order 192)
//   (c) 5090 TF32
//   (d) 5090 FP16         (+ order 192)
//   (e) 5090 FP8          (+ order 256)
//   (f) 7900 XTX FP16     KAMI only (no block-level library exists on AMD)
//   (g) Max 1100 FP16     KAMI vs SYCL-Bench
#include "bench_common.hpp"

namespace kami::bench {
namespace {

template <Scalar T>
void panel(const char* title, const sim::DeviceSpec& dev,
           const std::vector<std::size_t>& orders, bool with_nvidia_baselines,
           bool with_syclbench) {
  TablePrinter table({"order", "KAMI-1D", "KAMI-2D", "KAMI-3D",
                      with_syclbench ? "SYCL-Bench" : "cuBLASDx-like", "CUTLASS-like"});
  Series s1, s2, s3, sdx, sct, ssy;
  for (std::size_t n : orders) {
    s1.push_back(kami_tput<T>(Algo::OneD, dev, n, n, n));
    s2.push_back(kami_tput<T>(Algo::TwoD, dev, n, n, n));
    s3.push_back(kami_tput<T>(Algo::ThreeD, dev, n, n, n));
    sdx.push_back(with_nvidia_baselines ? cublasdx_tput<T>(dev, n, n, n) : std::nullopt);
    sct.push_back(with_nvidia_baselines ? cutlass_tput<T>(dev, n, n, n) : std::nullopt);
    ssy.push_back(with_syclbench ? syclbench_tput<T>(dev, n) : std::nullopt);
    table.add_row({std::to_string(n), cell(s1.back()), cell(s2.back()), cell(s3.back()),
                   with_syclbench ? cell(ssy.back()) : cell(sdx.back()),
                   cell(sct.back())});
  }
  emit_table(table, std::string(title) + " [TFLOPS]");
  if (with_nvidia_baselines) {
    std::cout << "  speedup vs cuBLASDx-like: 1D " << speedup_summary(s1, sdx) << ", 2D "
              << speedup_summary(s2, sdx) << ", 3D " << speedup_summary(s3, sdx) << "\n";
    std::cout << "  speedup vs CUTLASS-like:  1D " << speedup_summary(s1, sct) << ", 2D "
              << speedup_summary(s2, sct) << ", 3D " << speedup_summary(s3, sct) << "\n";
  }
  if (with_syclbench) {
    std::cout << "  speedup vs SYCL-Bench-like: 1D " << speedup_summary(s1, ssy) << ", 2D "
              << speedup_summary(s2, ssy) << ", 3D " << speedup_summary(s3, ssy) << "\n";
  }
  std::cout << "\n";
}

void run() {
  const std::vector<std::size_t> base{16, 32, 64, 128};
  std::vector<std::size_t> fp16_orders = base;
  fp16_orders.push_back(192);  // §5.1: "an additional 192 for FP16"
  std::vector<std::size_t> fp8_orders = base;
  fp8_orders.push_back(256);  // "and 256 for FP8"

  panel<double>("Fig 8(a): GH200 FP64", sim::gh200(), base, true, false);
  panel<fp16_t>("Fig 8(b): GH200 FP16", sim::gh200(), fp16_orders, true, false);
  panel<tf32_t>("Fig 8(c): RTX 5090 TF32", sim::rtx5090(), base, true, false);
  panel<fp16_t>("Fig 8(d): RTX 5090 FP16", sim::rtx5090(), fp16_orders, true, false);
  panel<fp8_e4m3_t>("Fig 8(e): RTX 5090 FP8", sim::rtx5090(), fp8_orders, true, false);
  panel<fp16_t>("Fig 8(f): AMD 7900 XTX FP16 (no block-level library on AMD)",
                sim::amd7900xtx(), base, false, false);
  panel<fp16_t>("Fig 8(g): Intel Max 1100 FP16", sim::intel_max1100(), base, false, true);
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig08_square_gemm",
                                 [] { kami::bench::run(); });
}
