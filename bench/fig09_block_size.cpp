// Figure 9: impact of block size (threads per block) on a 64x64 FP16 GEMM
// on the RTX 5090.
//
// The paper's finding: KAMI-1D delivers high performance across the whole
// range; KAMI-2D needs a square warp grid (only 54% of 1D at 64 threads,
// where p = 2 cannot form one and must fall back to p = 4's grid at reduced
// efficiency — here: infeasible); KAMI-3D needs a cube (>= 256 threads).
#include <cmath>

#include "bench_common.hpp"

namespace kami::bench {
namespace {

template <Scalar T>
std::optional<double> at_warps(Algo algo, int warps) {
  GemmOptions opt;
  opt.warps = warps;
  return kami_tput<T>(algo, sim::rtx5090(), 64, 64, 64, opt);
}

void run() {
  TablePrinter table({"block size (threads)", "warps", "KAMI-1D", "KAMI-2D", "KAMI-3D"});
  Series s1, s2, s3;
  for (int warps : {2, 4, 8, 16, 27, 32}) {
    auto legal_2d = [&](int p) {
      const int q = static_cast<int>(std::lround(std::sqrt(double(p))));
      return q * q == p;
    };
    auto legal_3d = [&](int p) {
      const int c = static_cast<int>(std::lround(std::cbrt(double(p))));
      return c * c * c == p;
    };
    s1.push_back(64 % warps == 0 ? at_warps<fp16_t>(Algo::OneD, warps) : std::nullopt);
    s2.push_back(legal_2d(warps) ? at_warps<fp16_t>(Algo::TwoD, warps) : std::nullopt);
    s3.push_back(legal_3d(warps) ? at_warps<fp16_t>(Algo::ThreeD, warps) : std::nullopt);
    table.add_row({std::to_string(warps * 32), std::to_string(warps), cell(s1.back()),
                   cell(s2.back()), cell(s3.back())});
  }
  emit_table(table, "Fig 9: impact of block size, 64x64 FP16 on RTX 5090 [TFLOPS]");
  std::cout << "\n  '-' marks warp counts the algorithm's grid shape cannot use\n";

  double best1 = 0, best2 = 0, best3 = 0;
  for (const auto& v : s1)
    if (v) best1 = std::max(best1, *v);
  for (const auto& v : s2)
    if (v) best2 = std::max(best2, *v);
  for (const auto& v : s3)
    if (v) best3 = std::max(best3, *v);
  std::cout << "  peak TFLOPS: 1D " << fmt_double(best1, 2) << ", 2D "
            << fmt_double(best2, 2) << ", 3D " << fmt_double(best3, 2)
            << "  (paper: 469.80 / 470.57 / 449.07)\n";
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig09_block_size",
                                 [] { kami::bench::run(); });
}
