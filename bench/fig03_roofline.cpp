// Figure 3: a roofline model of GEMM performance on the GH200.
//
// Two measured series against the device roofline, exactly as the figure:
//   * cuBLAS-like square FP64 GEMM from order 16 to 8192 (launched from
//     global memory, wave-quantized, launch overhead included);
//   * cuBLASDx-like block-level FP64 GEMM from order 16 to 96 — its order
//     ceiling is 98, set by shared memory capacity (Fig 3 caption) — run
//     with resident data, mirroring the paper's in-kernel 1000x loop.
// The roofline ceiling min(peak, AI x BW) is printed alongside.
#include "baselines/cublas_like.hpp"
#include "bench_common.hpp"
#include "model/roofline.hpp"

namespace kami::bench {
namespace {

void run() {
  const auto& dev = sim::gh200();
  std::cout << "Roofline constants: peak FP64 tensor = " << dev.peak_fp64_tflops
            << " TFLOPS, HBM = "
            << fmt_double(model::device_gmem_bytes_per_second(dev) / 1e12, 2)
            << " TB/s, ridge point = "
            << fmt_double(dev.peak_fp64_tflops * 1e12 /
                              model::device_gmem_bytes_per_second(dev),
                          2)
            << " flops/byte\n\n";

  TablePrinter cublas({"order", "AI (flops/B)", "roofline TFLOPS", "cuBLAS-like TFLOPS",
                       "% of roofline"});
  for (std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    const double ai = model::gemm_arithmetic_intensity(n, n, n, Precision::FP64);
    const double ceiling = model::roofline_tflops(dev, Precision::FP64, ai);
    const auto perf = baselines::cublas_square_gemm_perf<double>(dev, n);
    cublas.add_row({std::to_string(n), fmt_double(ai, 2), fmt_double(ceiling, 2),
                    fmt_double(perf.tflops, perf.tflops < 1 ? 4 : 2),
                    fmt_double(100.0 * perf.tflops / ceiling, 1)});
  }
  emit_table(cublas, "Fig 3: cuBLAS-like square FP64 GEMM vs roofline (GH200)");
  std::cout << "\n";

  TablePrinter dx({"order", "cuBLASDx-like TFLOPS", "% of FP64 peak"});
  for (std::size_t n : {16u, 32u, 48u, 64u, 80u, 96u}) {
    const auto t = cublasdx_tput<double>(dev, n, n, n);
    dx.add_row({std::to_string(n), cell(t),
                t ? fmt_double(100.0 * *t / dev.peak_fp64_tflops, 1) : "-"});
  }
  emit_table(dx, "Fig 3: cuBLASDx-like block-level FP64 GEMM (GH200, data resident)");
  std::cout << "  (order ceiling: 3*n^2*8 B of shared memory; n > 98 is infeasible — "
               "matches the Fig 3 caption)\n";
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig03_roofline",
                                 [] { kami::bench::run(); });
}
