// serve_load: open-loop, trace-driven workload generator for the fleet
// serving path.
//
//   serve_load [--requests N] [--seed S] [--queue-depth D] [--json out.json]
//   serve_load --smoke [--json out.json]        small fixed run for CI
//
// The generator models a production serving day compressed into simulated
// time slots. Arrivals are OPEN-LOOP: each slot's request count is drawn
// from a Poisson process whose rate follows a diurnal sine ramp with
// deterministic burst windows layered on top — load arrives whether or not
// the fleet has kept up, which is what actually overflows queues. Each
// request draws from a heavy-tailed shape mix (mostly tiny probes, a thin
// tail of large jobs), a precision mix (FP16-dominant, with an FP64 sliver
// only the GH200 shard can serve), an algorithm mix across KAMI-1D/2D/3D,
// and a 25% chance of carrying a latency deadline (deadline requests are
// hedged). Everything is seeded: the same --seed replays the same trace,
// byte for byte.
//
// Requests drive FleetServer::submit_async against bounded per-device
// queues in manual-drain mode: one drain per slot is the fleet's service
// capacity, so burst slots overflow the queues and exercise typed admission
// refusals, overflow reroutes, and router redistribution under depth
// penalties — deterministically.
//
// The --json artifact is a kami.obs.run v2 report (results/BENCH_serve.json
// in CI, schema-checked by `kami_prof validate`): per-shape-class p50/p99
// latency and deadline attainment in the `slo` section, plus the full
// fleet.*/serve.* metric snapshot (failovers, breaker trips, degradations,
// rejections) and human-readable outcome tables.
#include <cmath>
#include <cstdint>
#include <fstream>
#include <future>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "serve/fleet.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using kami::Matrix;
using kami::Precision;
using kami::Rng;
using kami::TablePrinter;
namespace core = kami::core;
namespace serve = kami::serve;

int usage() {
  std::cerr << "usage:\n"
            << "  serve_load [--requests N] [--seed S] [--queue-depth D]\n"
            << "             [--json out.json]\n"
            << "  serve_load --smoke [--json out.json]\n";
  return 2;
}

/// Knuth's method; the generator's rates are modest enough for it.
int poisson(Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

/// True when slot t sits in a burst window (3 of every 37 slots, offset so
/// a run opens with baseline traffic before its first burst).
bool burst_slot(std::size_t t) { return t % 37 >= 2 && t % 37 < 5; }

/// Arrival rate (requests per slot) at slot t: a diurnal sine ramp around
/// the base rate, with deterministic burst windows layered on top.
double arrival_rate(std::size_t t) {
  constexpr double kBaseRate = 24.0;
  constexpr double kDiurnalPeriod = 50.0;
  constexpr double kDiurnalAmplitude = 0.6;
  constexpr double kBurstFactor = 6.0;
  double rate = kBaseRate * (1.0 + kDiurnalAmplitude *
                                       std::sin(2.0 * 3.14159265358979323846 *
                                                static_cast<double>(t) / kDiurnalPeriod));
  if (burst_slot(t)) rate *= kBurstFactor;
  return rate;
}

struct RequestSpec {
  std::size_t m = 0, n = 0, k = 0;
  Precision prec = Precision::FP16;
  core::Algo algo = core::Algo::OneD;
  double deadline_cycles = 0.0;
};

/// Heavy-tailed shape mix. Dims are drawn per axis from the class's dim set;
/// every in-class combination stays inside the class's 2mnk flop band, so
/// the SLO report's classes line up with the generator's mix.
RequestSpec draw_request(Rng& rng) {
  RequestSpec req;

  static constexpr std::size_t kTiny[] = {16, 32, 48};
  static constexpr std::size_t kSmall[] = {64, 96};
  static constexpr std::size_t kMedium[] = {128, 160, 192};
  static constexpr std::size_t kLarge[] = {384};
  const auto draw_dims = [&](const std::size_t* dims, std::size_t count) {
    req.m = dims[rng.uniform_index(count)];
    req.n = dims[rng.uniform_index(count)];
    req.k = dims[rng.uniform_index(count)];
  };
  const double class_roll = rng.uniform();
  bool large = false;
  if (class_roll < 0.55)
    draw_dims(kTiny, 3);
  else if (class_roll < 0.85)
    draw_dims(kSmall, 2);
  else if (class_roll < 0.97)
    draw_dims(kMedium, 3);
  else {
    draw_dims(kLarge, 1);
    large = true;
  }
  // A sliver of degenerate (empty) products: health probes and cancelled
  // jobs look exactly like this in production traffic.
  if (rng.bernoulli(0.02)) {
    const std::uint64_t axis = rng.uniform_index(3);
    (axis == 0 ? req.m : axis == 1 ? req.n : req.k) = 0;
  }

  // Tiny probes skew FP16 like inference traffic; the large batch-job tail
  // arrives in FP32/FP64 like scientific workloads. (Large jobs exceed the
  // single-block KAMI envelope and serve via the degradation ladder's
  // reference rung, so they also exercise degraded serving.)
  const double prec_roll = rng.uniform();
  if (large)
    req.prec = prec_roll < 0.6 ? Precision::FP32 : Precision::FP64;
  else
    req.prec = prec_roll < 0.70   ? Precision::FP16
               : prec_roll < 0.85 ? Precision::FP32
               : prec_roll < 0.95 ? Precision::BF16
                                  : Precision::FP64;

  const double algo_roll = rng.uniform();
  req.algo = algo_roll < 0.40   ? core::Algo::OneD
             : algo_roll < 0.70 ? core::Algo::TwoD
                                : core::Algo::ThreeD;

  // Log-uniform deadlines straddle the per-class latency distributions, so
  // the report shows real attainment (some objectives met, some blown).
  if (rng.bernoulli(0.25))
    req.deadline_cycles = std::exp(rng.uniform(std::log(1e3), std::log(3e6)));
  return req;
}

struct LoadStats {
  std::size_t submitted = 0;
  std::size_t ok = 0;
  std::size_t rejected = 0;  ///< typed admission refusals (queues full)
  std::size_t errors = 0;    ///< other typed failures
  std::size_t failovers = 0;
  std::size_t hedged = 0;
  std::size_t degraded = 0;
  std::map<std::string, std::size_t> by_device;
  std::map<std::string, std::size_t> by_code;
};

template <kami::Scalar T>
void fold(LoadStats& stats, const serve::FleetResult<T>& r) {
  if (r.ok()) {
    ++stats.ok;
    if (r.result.degraded) ++stats.degraded;
  } else if (r.result.code == serve::ErrorCode::ResourceExhausted &&
             r.device_index < 0) {
    ++stats.rejected;
    ++stats.by_code[serve::error_code_name(r.result.code)];
  } else {
    ++stats.errors;
    ++stats.by_code[serve::error_code_name(r.result.code)];
  }
  if (r.failovers > 0) stats.failovers += static_cast<std::size_t>(r.failovers);
  if (r.hedged) ++stats.hedged;
  if (!r.device.empty()) ++stats.by_device[r.device];
}

/// Futures submitted in the current slot, bucketed by scalar type (one
/// future type per precision), harvested right after the slot's drain.
struct SlotFutures {
  std::vector<std::future<serve::FleetResult<kami::fp16_t>>> fp16;
  std::vector<std::future<serve::FleetResult<float>>> fp32;
  std::vector<std::future<serve::FleetResult<kami::bf16_t>>> bf16;
  std::vector<std::future<serve::FleetResult<double>>> fp64;
};

template <kami::Scalar T>
std::future<serve::FleetResult<T>> submit(serve::FleetServer& fleet,
                                          const RequestSpec& req, Rng& rng) {
  Matrix<T> A = kami::random_matrix<T>(req.m, req.k, rng);
  Matrix<T> B = kami::random_matrix<T>(req.k, req.n, rng);
  core::GemmOptions opt;
  // TimingOnly: the bench measures serving behavior — routing, queueing,
  // latency accounting — and the cycle model is exact in every mode;
  // skipping the numeric inner loops keeps the large tail affordable.
  opt.mode = kami::sim::ExecMode::TimingOnly;
  opt.deadline_cycles = req.deadline_cycles;
  return fleet.submit_async<T>(req.algo, std::move(A), std::move(B), opt);
}

int run(std::size_t requests, std::uint64_t seed, std::size_t queue_depth,
        const std::string& json_path) {
  serve::FleetConfig cfg = serve::table3_fleet();
  for (serve::FleetDeviceConfig& dev : cfg.devices) dev.queue_depth = queue_depth;
  cfg.async_workers_per_device = 0;  // manual drain: one drain per slot
  cfg.hedge_deadline_requests = true;
  cfg.slo = std::make_shared<serve::SloTracker>();
  cfg.request_id_prefix = "load";
  serve::FleetServer fleet(std::move(cfg));

  Rng rng(seed);
  LoadStats stats;
  std::map<std::string, std::size_t> mix;  ///< shape class -> generated count
  std::size_t slots = 0;
  std::size_t burst_slots = 0;
  std::size_t peak_arrivals = 0;

  while (stats.submitted < requests) {
    const double rate = arrival_rate(slots);
    if (burst_slot(slots)) ++burst_slots;
    std::size_t arrivals = static_cast<std::size_t>(poisson(rng, rate));
    arrivals = std::min(arrivals, requests - stats.submitted);
    peak_arrivals = std::max(peak_arrivals, arrivals);

    SlotFutures futures;
    for (std::size_t i = 0; i < arrivals; ++i) {
      const RequestSpec req = draw_request(rng);
      ++mix[std::string(serve::shape_class(req.m, req.n, req.k))];
      switch (req.prec) {
        case Precision::FP16:
          futures.fp16.push_back(submit<kami::fp16_t>(fleet, req, rng));
          break;
        case Precision::FP32:
          futures.fp32.push_back(submit<float>(fleet, req, rng));
          break;
        case Precision::BF16:
          futures.bf16.push_back(submit<kami::bf16_t>(fleet, req, rng));
          break;
        default:
          futures.fp64.push_back(submit<double>(fleet, req, rng));
          break;
      }
      ++stats.submitted;
    }
    // One drain per slot is the fleet's service capacity: a burst that
    // outruns it overflows the bounded queues (typed refusals), open-loop.
    fleet.drain();
    for (auto& f : futures.fp16) fold(stats, f.get());
    for (auto& f : futures.fp32) fold(stats, f.get());
    for (auto& f : futures.bf16) fold(stats, f.get());
    for (auto& f : futures.fp64) fold(stats, f.get());
    ++slots;
  }

  TablePrinter workload({"shape class", "requests"});
  for (const auto& [cls, count] : mix)
    workload.add_row({cls, std::to_string(count)});
  workload.print(std::cout, "generated workload");

  TablePrinter outcomes({"outcome", "count"});
  outcomes.add_row({"ok", std::to_string(stats.ok)});
  outcomes.add_row({"rejected (admission)", std::to_string(stats.rejected)});
  outcomes.add_row({"typed errors", std::to_string(stats.errors)});
  outcomes.add_row({"degraded", std::to_string(stats.degraded)});
  outcomes.add_row({"failovers", std::to_string(stats.failovers)});
  outcomes.add_row({"hedged", std::to_string(stats.hedged)});
  outcomes.print(std::cout, "outcomes");

  TablePrinter devices({"device", "served"});
  for (const auto& [dev, count] : stats.by_device)
    devices.add_row({dev, std::to_string(count)});
  devices.print(std::cout, "served by device");

  if (!stats.by_code.empty()) {
    TablePrinter codes({"code", "count"});
    for (const auto& [code, count] : stats.by_code)
      codes.add_row({code, std::to_string(count)});
    codes.print(std::cout, "typed failures by code");
  }

  if (!json_path.empty()) {
    kami::obs::RunReport report("serve_load");
    report.set_meta("seed", std::to_string(seed));
    report.set_meta("requests", std::to_string(stats.submitted));
    report.set_meta("slots", std::to_string(slots));
    report.set_meta("burst_slots", std::to_string(burst_slots));
    report.set_meta("peak_slot_arrivals", std::to_string(peak_arrivals));
    report.set_meta("queue_depth", std::to_string(queue_depth));
    report.set_meta("ok", std::to_string(stats.ok));
    report.set_meta("rejected", std::to_string(stats.rejected));
    report.set_meta("typed_errors", std::to_string(stats.errors));
    report.set_meta("degraded", std::to_string(stats.degraded));
    report.set_meta("failovers", std::to_string(stats.failovers));
    report.set_meta("hedged", std::to_string(stats.hedged));
    report.add_table("generated workload", workload);
    report.add_table("outcomes", outcomes);
    report.add_table("served by device", devices);
    report.set_metrics(kami::obs::MetricRegistry::global());
    report.set_slo(fleet.config().slo->to_json());
    std::ofstream os(json_path);
    if (!os) throw kami::PreconditionError("cannot open " + json_path + " for writing");
    report.write_json(os);
    std::cout << "wrote " << json_path << "\n";
  }

  const double attained =
      stats.submitted > 0
          ? 100.0 * static_cast<double>(stats.ok) / static_cast<double>(stats.submitted)
          : 0.0;
  std::cout << "served " << stats.ok << "/" << stats.submitted << " (" << attained
            << "% ok) across " << slots << " slots (" << burst_slots
            << " burst), rejected " << stats.rejected << ", failovers "
            << stats.failovers << ", hedged " << stats.hedged << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  std::size_t requests = 2000;
  std::uint64_t seed = 1;
  std::size_t queue_depth = 32;
  std::string json_path;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      if (args[i] == "--requests" && i + 1 < args.size()) requests = std::stoul(args[++i]);
      else if (args[i] == "--seed" && i + 1 < args.size()) seed = std::stoull(args[++i]);
      else if (args[i] == "--queue-depth" && i + 1 < args.size())
        queue_depth = std::stoul(args[++i]);
      else if (args[i] == "--json" && i + 1 < args.size()) json_path = args[++i];
      else if (args[i] == "--smoke") requests = 300;
      else return usage();
    }
    return run(requests, seed, queue_depth, json_path);
  } catch (const std::exception& e) {
    std::cerr << "serve_load: " << e.what() << "\n";
    return 1;
  }
}
