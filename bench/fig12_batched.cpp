// Figure 12: batched GEMM in FP64 on GH200, KAMI vs cuBLAS-like and
// MAGMA-like batched drivers at batch sizes 1000 and 10000.
//
// §5.4: every matrix is fetched from global memory, so absolute numbers sit
// below the block-level results, and the comparators suffer from padded
// generic tiles plus host-side pointer-array setup.
#include "baselines/cublas_like.hpp"
#include "baselines/magma_like.hpp"
#include "bench_common.hpp"
#include "core/batched.hpp"

namespace kami::bench {
namespace {

void panel(std::size_t batch) {
  const auto& dev = sim::gh200();
  TablePrinter table({"order", "KAMI [TFLOPS]", "MAGMA-like", "cuBLAS-like",
                      "vs MAGMA", "vs cuBLAS"});
  Series sk, sm, sc;
  for (std::size_t n : {16u, 32u, 64u, 128u}) {
    // KAMI's batched launcher auto-selects the faster algorithm per shape.
    auto kami = core::kami_batched_perf<double>(dev, n, n, n, batch, Algo::OneD);
    try {
      const auto k2 = core::kami_batched_perf<double>(dev, n, n, n, batch, Algo::TwoD);
      if (k2.tflops > kami.tflops) kami = k2;
    } catch (const PreconditionError&) {
    }
    const auto magma = baselines::magma_batched_fp64_perf(dev, n, batch);
    const auto cublas = baselines::cublas_batched_fp64_perf(dev, n, batch);
    sk.push_back(kami.tflops);
    sm.push_back(magma.feasible ? std::optional<double>(magma.tflops) : std::nullopt);
    sc.push_back(cublas.feasible ? std::optional<double>(cublas.tflops) : std::nullopt);
    table.add_row(
        {std::to_string(n), fmt_double(kami.tflops, 3),
         sm.back() ? fmt_double(*sm.back(), 3) : "-",
         sc.back() ? fmt_double(*sc.back(), 4) : "-",
         sm.back() ? fmt_double(kami.tflops / *sm.back(), 1) + "x" : "-",
         sc.back() ? fmt_double(kami.tflops / *sc.back(), 1) + "x" : "-"});
  }
  emit_table(table,
             "Fig 12: batched FP64 GEMM on GH200, batch = " + std::to_string(batch));
  std::cout << "  average speedups: vs MAGMA-like " << speedup_summary(sk, sm)
            << ", vs cuBLAS-like " << speedup_summary(sk, sc) << "\n\n";
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig12_batched", [] {
    kami::bench::panel(1000);
    kami::bench::panel(10000);
  });
}
