// Figure 11: low-rank GEMM (C = U x V with k = 16 or 32) in FP16 on GH200.
//
// KAMI's advantage is larger here than for square GEMM (§5.3): staging
// through shared memory buys almost nothing when k is tiny, while KAMI
// loads straight into registers and only broadcasts the thin V panels.
#include "bench_common.hpp"
#include "core/lowrank.hpp"

namespace kami::bench {
namespace {

void panel(std::size_t k) {
  const auto& dev = sim::gh200();
  TablePrinter table({"m=n", "KAMI-1D", "KAMI-2D", "KAMI-3D", "cuBLASDx-like",
                      "CUTLASS-like"});
  Series s1, s2, s3, sdx, sct;
  for (std::size_t n : {16u, 32u, 64u, 128u, 192u}) {
    s1.push_back(kami_tput<fp16_t>(Algo::OneD, dev, n, n, k));
    s2.push_back(kami_tput<fp16_t>(Algo::TwoD, dev, n, n, k));
    s3.push_back(kami_tput<fp16_t>(Algo::ThreeD, dev, n, n, k));
    sdx.push_back(cublasdx_tput<fp16_t>(dev, n, n, k));
    sct.push_back(cutlass_tput<fp16_t>(dev, n, n, k));
    table.add_row({std::to_string(n), cell(s1.back()), cell(s2.back()), cell(s3.back()),
                   cell(sdx.back()), cell(sct.back())});
  }
  emit_table(table, "Fig 11: low-rank GEMM k=" + std::to_string(k) +
                        " FP16 on GH200 [TFLOPS]");
  std::cout << "  KAMI-1D speedup vs cuBLASDx-like: " << speedup_summary(s1, sdx)
            << "; vs CUTLASS-like: " << speedup_summary(s1, sct) << "\n\n";
}

}  // namespace
}  // namespace kami::bench

int main(int argc, char** argv) {
  return kami::bench::bench_main(argc, argv, "fig11_lowrank", [] {
    kami::bench::panel(16);
    kami::bench::panel(32);
  });
}
